package network

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/engine"
)

// This file is the chaos layer of the networked deployment: a Transport
// decorator that injects deterministic, seeded faults on the player side
// of every connection. It doubles as the regression harness for the wire
// protocol — every fault it injects must surface as either a validated
// protocol error or a tolerated straggler, never as a wrong verdict.

// FaultPlan configures the faults injected on one player's connections.
// The zero value injects nothing.
type FaultPlan struct {
	// DropDials fails the player's first N dial attempts, exercising the
	// node-side retry-with-backoff path. A value of at least the node's
	// retry budget keeps the player off the network entirely.
	DropDials int
	// Delay is slept before every frame the player writes, turning the
	// player into a straggler (tolerated while Delay stays under the
	// referee's per-frame timeout).
	Delay time.Duration
	// CorruptFrame corrupts the payload of the player's Nth written frame
	// (1-based: HELLO is frame 1, the round-r VOTE is frame r+1); zero
	// corrupts nothing. For single-round frames the last payload byte is
	// XORed with a seeded mask whose high bit is always set, so
	// single-bit votes become detectably out of range for the referee's
	// bits enforcement. A VOTE_BATCH is corrupted in its batch-id field
	// instead — its tail bytes are real vote bits, where a flip would be
	// a silent wrong verdict rather than a detectable violation; the
	// referee's batch-id echo check catches the id corruption
	// deterministically.
	CorruptFrame int
	// CrashAtRound closes the player's connection as it writes the VOTE of
	// the given round (1-based); zero never crashes. The player behaves
	// correctly up to round CrashAtRound-1 and then dies mid-protocol. A
	// VOTE_BATCH covers as many rounds as its trial count, so a crash
	// scheduled inside a batch kills the write of the whole batch.
	CrashAtRound int
	// DropVerdict kills the connection as the Nth AGG_VERDICT frame
	// (1-based) arrives on its read side; zero never drops. Meaningful in
	// AggPlans: verdicts flow downstream, so the fault models an
	// aggregator dying mid-relay — its shard votes through round N and is
	// absent from round N+1 on, exactly as if every member had crashed at
	// round N+1.
	DropVerdict int
	// CorruptVerdict corrupts the batch id of the Nth AGG_VERDICT frame
	// (1-based) read off the connection; zero corrupts nothing. The
	// aggregator's echo audit rejects the mismatched id deterministically,
	// so the observable failure domain is identical to DropVerdict's.
	CorruptVerdict int
}

// FaultConfig configures NewFaultTransport.
type FaultConfig struct {
	// Seed drives every random choice the fault layer makes (corruption
	// masks); two transports with equal configs inject identical faults.
	Seed uint64
	// Plans maps a player id to its fault plan; players without an entry
	// are passed through untouched.
	Plans map[uint32]FaultPlan
	// AggPlans maps an aggregator id to the fault plan applied on its
	// upstream (aggregator -> root) connection in a sharded referee
	// tree. CrashAtRound counts the rounds an AGG_SUM / AGG_PLANES
	// frame reduces, so crashing aggregator a at round r is the tree's
	// failure-domain analogue of crashing every one of a's players at
	// round r.
	AggPlans map[uint32]FaultPlan
}

// FaultStats counts the faults a FaultTransport actually injected.
type FaultStats struct {
	// DialsDropped counts dial attempts failed by DropDials budgets.
	DialsDropped int
	// FramesDelayed counts frame writes that slept a Delay.
	FramesDelayed int
	// FramesCorrupted counts frames whose payload was corrupted.
	FramesCorrupted int
	// Crashes counts connections killed by CrashAtRound.
	Crashes int
	// VerdictsDropped counts connections killed by DropVerdict on an
	// AGG_VERDICT's arrival.
	VerdictsDropped int
	// VerdictsCorrupted counts AGG_VERDICT frames corrupted in flight by
	// CorruptVerdict.
	VerdictsCorrupted int
}

// FaultTransport wraps any Transport and injects the configured faults on
// the dialing (player) side. It implements both Transport and
// PlayerDialer; plans are applied per player id, so it must be used with
// callers that dial through DialPlayer (PlayerNode does). Plain Dial
// calls pass through unfaulted.
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu       sync.Mutex
	dials    map[uint32]int
	aggDials map[uint32]int
	stats    FaultStats
}

// Verify interface compliance.
var (
	_ Transport        = (*FaultTransport)(nil)
	_ PlayerDialer     = (*FaultTransport)(nil)
	_ AggregatorDialer = (*FaultTransport)(nil)
)

// NewFaultTransport decorates inner with the configured fault plans.
func NewFaultTransport(inner Transport, cfg FaultConfig) (*FaultTransport, error) {
	if inner == nil {
		return nil, fmt.Errorf("network: fault transport around nil transport")
	}
	players := make([]uint32, 0, len(cfg.Plans))
	for player := range cfg.Plans {
		players = append(players, player)
	}
	sort.Slice(players, func(i, j int) bool { return players[i] < players[j] })
	for _, player := range players {
		plan := cfg.Plans[player]
		if plan.DropDials < 0 || plan.Delay < 0 || plan.CorruptFrame < 0 || plan.CrashAtRound < 0 ||
			plan.DropVerdict < 0 || plan.CorruptVerdict < 0 {
			return nil, fmt.Errorf("network: negative fault parameter in plan for player %d", player)
		}
	}
	aggs := make([]uint32, 0, len(cfg.AggPlans))
	for agg := range cfg.AggPlans {
		aggs = append(aggs, agg)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i] < aggs[j] })
	for _, agg := range aggs {
		plan := cfg.AggPlans[agg]
		if plan.DropDials < 0 || plan.Delay < 0 || plan.CorruptFrame < 0 || plan.CrashAtRound < 0 ||
			plan.DropVerdict < 0 || plan.CorruptVerdict < 0 {
			return nil, fmt.Errorf("network: negative fault parameter in plan for aggregator %d", agg)
		}
	}
	return &FaultTransport{
		inner:    inner,
		cfg:      cfg,
		dials:    make(map[uint32]int),
		aggDials: make(map[uint32]int),
	}, nil
}

// Listen implements Transport by delegating to the inner transport; the
// referee side is never faulted.
func (f *FaultTransport) Listen() (net.Listener, error) { return f.inner.Listen() }

// Dial implements Transport without faults: callers that do not identify
// their player (no PlayerDialer path) are passed through.
func (f *FaultTransport) Dial(addr net.Addr) (net.Conn, error) { return f.inner.Dial(addr) }

// DialPlayer implements PlayerDialer: it applies the player's plan — the
// dial-drop budget first, then a fault-wrapped connection for the frame-
// level faults.
func (f *FaultTransport) DialPlayer(addr net.Addr, player uint32) (net.Conn, error) {
	plan, planned := f.cfg.Plans[player]
	if !planned {
		return f.inner.Dial(addr)
	}
	f.mu.Lock()
	attempt := f.dials[player]
	f.dials[player]++
	if attempt < plan.DropDials {
		f.stats.DialsDropped++
		f.mu.Unlock()
		return nil, fmt.Errorf("network: fault: dropped dial %d of player %d", attempt+1, player)
	}
	f.mu.Unlock()
	conn, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{
		Conn: conn,
		tr:   f,
		plan: plan,
		rng:  engine.NodeRNG(f.cfg.Seed, int(player)),
	}, nil
}

// DialAggregator implements AggregatorDialer: the aggregator's plan is
// applied to its upstream hop exactly as a player plan is to a player
// connection. The corruption RNG stream is derived from the seed and
// the ones' complement of the aggregator id, so it never collides with
// any player's stream.
func (f *FaultTransport) DialAggregator(addr net.Addr, agg uint32) (net.Conn, error) {
	plan, planned := f.cfg.AggPlans[agg]
	if !planned {
		return f.inner.Dial(addr)
	}
	f.mu.Lock()
	attempt := f.aggDials[agg]
	f.aggDials[agg]++
	if attempt < plan.DropDials {
		f.stats.DialsDropped++
		f.mu.Unlock()
		return nil, fmt.Errorf("network: fault: dropped dial %d of aggregator %d", attempt+1, agg)
	}
	f.mu.Unlock()
	conn, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{
		Conn: conn,
		tr:   f,
		plan: plan,
		rng:  engine.NodeRNG(f.cfg.Seed, -1-int(agg)),
	}, nil
}

// Stats returns a snapshot of the faults injected so far.
func (f *FaultTransport) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *FaultTransport) count(update func(*FaultStats)) {
	f.mu.Lock()
	update(&f.stats)
	f.mu.Unlock()
}

// faultConn applies frame-level faults to the player side of a
// connection. Every frame is written with a single Write call (see
// writeFrame), so write boundaries are frame boundaries.
type faultConn struct {
	net.Conn
	tr   *FaultTransport
	plan FaultPlan
	rng  *rand.Rand

	mu     sync.Mutex
	writes int // frames written on this connection
	votes  int // rounds voted on, counting a VOTE_BATCH as its trial count

	// Read-side frame cursor for the verdict faults: the downstream
	// AGG_VERDICT stream arrives on this connection's reads, possibly
	// split or coalesced, so the scanner tracks where in the current
	// header or payload the stream is.
	rd struct {
		hdr  [headerSize]byte
		have int  // header bytes collected
		rem  int  // payload bytes left in the current frame
		plen int  // payload length of the current frame
		seen int  // AGG_VERDICT frames observed so far
		mask byte // pending batch-id corruption for the current frame
	}
}

// VOTE_BATCH payload offsets within a written frame (header included):
// player(4) batch(4) count(4) bitset words.
const (
	voteBatchIDOffset    = headerSize + 7 // low byte of the batch id
	voteBatchCountOffset = headerSize + 8 // trial-count field
)

// AGG_VERDICT carries its batch id first, so its low byte sits at
// payload offset 3 (the read-side scanner walks payload positions, not
// whole-frame offsets).
const aggVerdictIDPayloadOffset = 3

// Read applies the read-side verdict faults. Write faults model a
// player (or an aggregator's upstream hop) misbehaving; the verdict
// faults model the downstream relay dying, and AGG_VERDICT arrives on
// the aggregator's dialed connection as a read. Plans without verdict
// faults pass straight through.
func (c *faultConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if c.plan.DropVerdict == 0 && c.plan.CorruptVerdict == 0 {
		return n, err
	}
	if keep, kerr := c.scanVerdicts(p[:n]); kerr != nil {
		return keep, kerr
	}
	return n, err
}

// scanVerdicts walks the read stream's frame structure and applies the
// verdict faults in place. It returns how many leading bytes the reader
// may keep and a non-nil error when the connection was killed on the
// target verdict's arrival.
func (c *faultConn) scanVerdicts(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := 0
	for i < len(p) {
		if c.rd.rem > 0 {
			n := min(c.rd.rem, len(p)-i)
			if c.rd.mask != 0 {
				if off := aggVerdictIDPayloadOffset - (c.rd.plen - c.rd.rem); off >= 0 && off < n {
					p[i+off] ^= c.rd.mask
					c.rd.mask = 0
					c.tr.count(func(s *FaultStats) { s.VerdictsCorrupted++ })
				}
			}
			c.rd.rem -= n
			i += n
			continue
		}
		startedHere := c.rd.have == 0
		start := i
		n := copy(c.rd.hdr[c.rd.have:], p[i:])
		c.rd.have += n
		i += n
		if c.rd.have < headerSize {
			return len(p), nil
		}
		c.rd.have = 0
		c.rd.plen = int(binary.BigEndian.Uint32(c.rd.hdr[4:8]))
		c.rd.rem = c.rd.plen
		c.rd.mask = 0
		if FrameType(c.rd.hdr[3]) != FrameAggVerdict {
			continue
		}
		c.rd.seen++
		if c.rd.seen == c.plan.DropVerdict {
			c.tr.count(func(s *FaultStats) { s.VerdictsDropped++ })
			_ = c.Conn.Close()
			keep := 0
			if startedHere {
				keep = start
			}
			return keep, fmt.Errorf("network: fault: connection killed on verdict %d's arrival", c.rd.seen)
		}
		if c.rd.seen == c.plan.CorruptVerdict {
			c.rd.mask = byte(c.rng.Uint64()) | 0x80
		}
	}
	return len(p), nil
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.plan.Delay > 0 {
		c.tr.count(func(s *FaultStats) { s.FramesDelayed++ })
		time.Sleep(c.plan.Delay)
	}
	c.mu.Lock()
	c.writes++
	frame := c.writes
	var kind FrameType
	if len(p) >= headerSize && binary.BigEndian.Uint16(p[0:2]) == Magic {
		kind = FrameType(p[3])
	}
	rounds := 0
	switch kind {
	case FrameVote:
		rounds = 1
	case FrameVoteBatch, FrameVoteBatchR, FrameAggSum, FrameAggPlanes:
		// Every batch-shaped frame carries its trial count at the same
		// payload offset: player/agg id (4), batch id (4), count (4).
		if len(p) >= voteBatchCountOffset+4 {
			rounds = int(binary.BigEndian.Uint32(p[voteBatchCountOffset : voteBatchCountOffset+4]))
		}
	}
	c.votes += rounds
	lastRound := c.votes
	var mask byte
	if frame == c.plan.CorruptFrame {
		mask = byte(c.rng.Uint64()) | 0x80
	}
	c.mu.Unlock()

	if c.plan.CrashAtRound > 0 && rounds > 0 && lastRound >= c.plan.CrashAtRound {
		c.tr.count(func(s *FaultStats) { s.Crashes++ })
		_ = c.Conn.Close()
		return 0, fmt.Errorf("network: fault: player crashed at round %d", c.plan.CrashAtRound)
	}
	if mask != 0 && len(p) > headerSize {
		c.tr.count(func(s *FaultStats) { s.FramesCorrupted++ })
		q := append([]byte(nil), p...)
		// Corrupt the batch id of a batch-shaped frame (detected by the
		// receiver's echo check) and the last payload byte of everything
		// else; a batch frame's tail bytes are genuine vote bits or
		// counters, where a flip would be a silent wrong verdict instead
		// of a validated protocol error.
		idx := len(q) - 1
		switch kind {
		case FrameVoteBatch, FrameVoteBatchR, FrameAggSum, FrameAggPlanes:
			if len(q) > voteBatchIDOffset {
				idx = voteBatchIDOffset
			}
		}
		q[idx] ^= mask
		n, err := c.Conn.Write(q)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return c.Conn.Write(p)
}
