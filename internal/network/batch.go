package network

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"os"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// This file implements the referee side of multi-trial batch pipelining:
// one long-lived session per engine worker in which ROUND_BATCH frames
// carry up to MaxBatchTrials public-coin seeds at once, nodes answer
// with packed VOTE_BATCH bitsets, and the referee evaluates a whole
// batch of verdicts per synchronization. Each slot gets a dedicated
// writer goroutine fed by an unbounded frame queue: the in-memory
// transport's writes are fully synchronous (net.Pipe parks the writer
// until the peer reads), so queueing the next batches' ROUND_BATCH
// frames while earlier votes are still being gathered is exactly what
// keeps a window of batches in flight. Determinism is untouched — every
// vote derives from (shared seed, player id) exactly as unbatched, and
// the referee's per-batch evaluation reproduces decideVotes bit for
// bit (word-parallel when the referee has threshold shape, trial by
// trial otherwise).

// frameQueue is an unbounded FIFO of already-encoded frames feeding one
// slot's writer goroutine. Unbounded is deliberate: the aggregator must
// never block enqueueing (a bounded queue toward a stalled node could
// deadlock the window), and memory stays bounded anyway because the
// aggregator only issues one chunk — batch times window trials — ahead
// of the gathers. Frames are appended to a flat byte run and drained
// wholesale: the writer claims every pending frame in one swap, so the
// two backing buffers ping-pong at the queue's high-water mark instead
// of growing with total throughput (the previous queue advanced with
// items = items[1:], pinning the consumed head of the backing array for
// the life of the session).
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte // pending frames, encoded by the wire.go Append* helpers
	frames int    // number of frames in buf
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one encoded frame (the bytes are copied, so the caller
// may reuse its encode buffer immediately); pushes after close are
// dropped.
func (q *frameQueue) push(frame []byte) {
	q.mu.Lock()
	if !q.closed {
		q.buf = append(q.buf, frame...)
		q.frames++
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// drain blocks until at least one frame is pending (or the queue is
// closed and empty), then claims the entire pending run in one swap:
// spare becomes the queue's next accumulation buffer and the caller
// gets the encoded run plus its frame count. ok is false once the queue
// is closed and fully drained.
func (q *frameQueue) drain(spare []byte) (run []byte, frames int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return spare[:0], 0, false
	}
	run, frames = q.buf, q.frames
	q.buf, q.frames = spare[:0], 0
	return run, frames, true
}

// close marks the queue finished; pending frames still drain.
func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// batchSlot pairs a referee-side player slot with its writer queue and
// its own failure state (playerSlot.dead is single-goroutine state of
// the unbatched path; the batch session's writer, gatherers and
// aggregator need a locked flag).
type batchSlot struct {
	sl         *playerSlot
	q          *frameQueue
	writerDone chan struct{}

	mu   sync.Mutex
	dead bool
	err  error
}

func (b *batchSlot) isDead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}

// batchSession is one engine worker's live pipelined session: k node
// goroutines, the accepted referee slots with their writers, and the
// per-batch evaluation scratch. It persists across engine chunks (batch
// ids grow monotonically) until the worker's scratch is closed.
type batchSession struct {
	c        *Cluster
	server   *RefereeServer
	listener net.Listener
	sess     *session
	cancel   context.CancelFunc
	nodes    []*PlayerNode
	nodeWG   sync.WaitGroup
	slots    []*batchSlot

	nextBatch uint32 // aggregator-only

	mu      sync.Mutex
	nodeErr error
	retries int // accumulated node connect retries, not yet reported

	// msgBits is the rule's message width r: 1 gathers classic
	// VOTE_BATCH bitsets, wider rules gather VOTE_BATCH_R plane sets.
	msgBits int

	// Threshold shape of the referee, when it has one: reject iff at
	// least shapeT of the k single-bit votes reject. This is what the
	// word-parallel fast path evaluates.
	shapeT  int
	shapeOK bool

	// Sum shape of the referee, when it has one: reject iff the k r-bit
	// values sum to at least sumT. sumOK additionally requires the
	// referee's width to match the rule's and the counter planes to fit,
	// so the word-parallel sum path is only taken when it is exact.
	sumT  int
	sumOK bool

	// Per-batch scratch: delivered vote bitsets (r plane sets) by player
	// id, and the bit-sliced counter planes of the fast paths.
	deliv  [][]uint64
	planes []uint64

	// Aggregator-only scratch, reused across chunks. enc is the frame
	// encode buffer (push copies bytes into the queue, so it is free
	// again as soon as the pushes return); seeds backs each flight's
	// ROUND_BATCH payload the same way. samplers is pooled per flight
	// ordinal within a chunk: staged sampler slices stay referenced by
	// the nodes until their batch is gathered, and gather waits on every
	// live slot, so by the time runChunk returns all of them are free.
	enc         []byte
	seeds       []uint64
	samplers    [][]dist.Sampler
	flights     []batchFlight
	verdictBits []uint64

	// Per-trial fallback scratch: the flat session aliases the referee
	// session's buffers, the sharded session (which has no session
	// object) owns its own.
	votes []core.Message
	got   []bool

	// Sharded-tree state, nil/empty on the flat star. aggErr (under mu)
	// records the first aggregator failure; shardSums/shardPresent/
	// shardGot are the root's per-shard gather table, indexed by shard
	// id, and aggSums the combined counter accumulator. The tracker
	// force-closes every tree connection when the session context dies —
	// the flat path delegates that to its session object.
	shards       [][]uint32
	aggs         []*aggregator
	aggListeners []net.Listener
	tracker      *connTracker
	trackStop    func()
	aggErr       error
	shardSums    [][]uint64
	shardPresent []uint32
	shardGot     []bool
	aggSums      []uint64
}

// batchFlight is one wire batch of a chunk: its frame id and the spec
// range it covers.
type batchFlight struct {
	id           uint32
	start, count int
}

// newBatchSession starts the session: listener, k node goroutines, the
// accept/HELLO phase, and one writer per accepted slot. Strict-mode
// node failures cancel the session context so a blocked accept unwinds.
//
//dut:coldpath once-per-session construction; node build, dial and handshake are amortized across every batch the session serves
func newBatchSession(ctx context.Context, c *Cluster) (*batchSession, error) {
	server, err := c.newServer()
	if err != nil {
		return nil, err
	}
	nodes, err := c.buildNodes(dist.NopSampler{})
	if err != nil {
		return nil, err
	}
	listener, err := c.tr.Listen()
	if err != nil {
		return nil, fmt.Errorf("network: listen: %w", err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	go func() {
		<-runCtx.Done()
		_ = listener.Close()
	}()

	bs := &batchSession{c: c, server: server, listener: listener, cancel: cancel, nodes: nodes}
	bs.msgBits = c.rule.Bits()
	bs.shapeT, bs.shapeOK = core.ThresholdShape(c.referee, c.k)
	planeLen := bits.Len(uint(c.k))
	if sumT, sumBits, ok := core.SumShape(c.referee, c.k); ok && sumBits == bs.msgBits {
		// The bit-sliced sum counter needs Len(k * (2^r - 1)) planes; cap
		// it where the lane sums (and atLeast's threshold compare) stay
		// exact, falling back to per-trial decoding beyond.
		if need := sumBits + bits.Len(uint(c.k)); need <= 62 {
			bs.sumT, bs.sumOK = sumT, true
			if need > planeLen {
				planeLen = need
			}
		}
	}
	bs.deliv = make([][]uint64, c.k)
	bs.planes = make([]uint64, planeLen)

	if c.topo.enabled() {
		if err := bs.startSharded(runCtx, listener); err != nil {
			cancel()
			bs.nodeWG.Wait()
			// A strict-mode node or aggregator failure is the root cause;
			// the accept error it provokes is only a symptom.
			if !c.tolerant() {
				if nodeErr := bs.peekNodeErr(); nodeErr != nil {
					return nil, nodeErr
				}
				if aggErr := bs.peekAggErr(); aggErr != nil && !isTransportErr(aggErr) {
					return nil, aggErr
				}
			}
			return nil, err
		}
		return bs, nil
	}

	for _, node := range nodes {
		bs.nodeWG.Add(1)
		//lint:ignore dut/ctxprop cancel() closes the listener and session conns, which unwinds connect and runSessionConn; a ctx check here would race the same teardown
		go func(node *PlayerNode) {
			defer bs.nodeWG.Done()
			conn, retries, err := node.connect(c.tr, listener.Addr())
			bs.addRetries(retries)
			if err != nil {
				bs.failNode(err)
				return
			}
			defer func() { _ = conn.Close() }()
			if _, err := node.runSessionConn(conn, false); err != nil {
				bs.failNode(err)
			}
		}(node)
	}

	sess, err := server.startSession(runCtx, listener)
	if err != nil {
		cancel()
		bs.nodeWG.Wait()
		// A strict-mode node failure is the root cause; the referee error
		// it provokes (cancelled accept) is only a symptom.
		if nodeErr := bs.peekNodeErr(); nodeErr != nil && !c.tolerant() {
			return nil, nodeErr
		}
		return nil, err
	}
	bs.sess = sess
	bs.votes, bs.got = sess.votes, sess.got
	bs.slots = make([]*batchSlot, len(sess.slots))
	for i, sl := range sess.slots {
		slot := &batchSlot{sl: sl, q: newFrameQueue(), writerDone: make(chan struct{})}
		bs.slots[i] = slot
		//lint:ignore dut/ctxprop the writer drains until its frame queue closes (Close always closes it); cancellation reaches it through failSlot closing the conn
		go bs.slotWriter(slot)
	}
	return bs, nil
}

func (bs *batchSession) addRetries(n int) {
	bs.mu.Lock()
	bs.retries += n
	bs.mu.Unlock()
}

// takeRetries claims the retries accumulated since the last report, so
// each retry is counted on exactly one trial's stats.
func (bs *batchSession) takeRetries() int {
	bs.mu.Lock()
	n := bs.retries
	bs.retries = 0
	bs.mu.Unlock()
	return n
}

// failNode records a node-goroutine error; in strict mode it also tears
// the session down (any node failure dooms every further trial).
func (bs *batchSession) failNode(err error) {
	bs.mu.Lock()
	if bs.nodeErr == nil {
		bs.nodeErr = err
	}
	bs.mu.Unlock()
	if !bs.c.tolerant() {
		bs.cancel()
	}
}

func (bs *batchSession) peekNodeErr() error {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.nodeErr
}

// failSlot marks a slot dead and closes its connection, recording the
// first error. In quorum mode the slot is simply a straggler from then
// on; in strict mode the next gather reports it.
func (bs *batchSession) failSlot(slot *batchSlot, err error) {
	slot.mu.Lock()
	already := slot.dead
	slot.dead = true
	if slot.err == nil {
		slot.err = err
	}
	slot.mu.Unlock()
	if !already {
		_ = slot.sl.conn.Close()
	}
}

// slotWriter drains one slot's frame queue onto its connection. Writes
// use the write deadline only — the gather goroutines own the same
// connection's read deadline concurrently. Each wake-up claims every
// pending frame and flushes them in a single write under one deadline
// scaled by the frame count, so a full window of queued frames costs
// one syscall pair instead of one per frame while each frame keeps its
// original per-frame time budget. The node reads frame by frame off the
// same stream, so coalescing is invisible to it.
//
//dut:hotpath
func (bs *batchSession) slotWriter(slot *batchSlot) {
	defer close(slot.writerDone)
	var spare []byte
	for {
		run, frames, ok := slot.q.drain(spare)
		spare = run
		if !ok {
			return
		}
		if slot.isDead() {
			continue // keep draining; the slot is out of the session
		}
		setWriteDeadline(slot.sl.conn, time.Duration(frames)*bs.server.timeout)
		if err := writeCoalesced(slot.sl.conn, run); err != nil {
			//lint:ignore dut/hotalloc failure path: failSlot drops the player, so the error allocation never recurs on a live slot
			bs.failSlot(slot, fmt.Errorf("network: coalesced write of %d frame(s) to player %d: %w", frames, slot.sl.player, err))
		}
	}
}

// runChunk executes one engine chunk: it slices specs into wire batches
// of at most batch trials, issues every ROUND_BATCH up front (putting
// the whole window in flight), then gathers and decides batch by batch.
// out receives one RoundResult per spec.
func (bs *batchSession) runChunk(ctx context.Context, specs []engine.RoundSpec, batch int, out []engine.RoundResult) error {
	flights := bs.flights[:0]
	for start := 0; start < len(specs); start += batch {
		count := min(len(specs)-start, batch)
		seeds := bs.seeds[:0]
		ord := len(flights)
		if ord == len(bs.samplers) {
			bs.samplers = append(bs.samplers, nil)
		}
		samplers := bs.samplers[ord][:0]
		for j := 0; j < count; j++ {
			spec := specs[start+j]
			if spec.Sampler == nil {
				bs.flights = flights
				return fmt.Errorf("network: nil sampler")
			}
			seeds = append(seeds, engine.SharedSeed(spec.Seed, spec.Trial))
			samplers = append(samplers, spec.Sampler)
		}
		bs.seeds, bs.samplers[ord] = seeds, samplers
		id := bs.nextBatch
		bs.nextBatch++
		for _, node := range bs.nodes {
			node.stageBatch(id, samplers)
		}
		enc, err := AppendRoundBatch(bs.enc[:0], RoundBatch{Batch: id, Seeds: seeds})
		bs.enc = enc
		if err != nil {
			bs.flights = flights
			return err
		}
		for _, slot := range bs.slots {
			if slot.isDead() {
				continue
			}
			slot.q.push(enc)
		}
		flights = append(flights, batchFlight{id: id, start: start, count: count})
	}
	bs.flights = flights
	// Claim connect retries only when a flight will carry them; an empty
	// chunk must leave them accumulated for the next chunk's stats.
	retries := 0
	if len(flights) > 0 {
		retries = bs.takeRetries()
	}
	for _, fl := range flights {
		if err := ctx.Err(); err != nil {
			return bs.chunkErr(err)
		}
		sw := engine.StartStopwatch()
		var received int
		if bs.sharded() {
			received = bs.gatherShards(fl.id, fl.count)
		} else {
			received = bs.gather(fl.id, fl.count)
		}
		if bs.server.strict() && received < bs.c.k {
			return bs.chunkErr(bs.firstSlotErr())
		}
		results := out[fl.start : fl.start+fl.count]
		verdictBits, err := bs.decideBatch(fl.count, received, results)
		if err != nil {
			return bs.chunkErr(err)
		}
		// Verdict fan-out mirrors the gather's shape: on the tree the root
		// encodes one AGG_VERDICT — verdict bitset plus the per-shard
		// present accounting it just decided with — and queues the same
		// bytes to every aggregator, so its downstream work is
		// O(aggregators) regardless of player count; each aggregator
		// re-expands it into the VERDICT_BATCH its shard expects. The flat
		// star keeps pushing VERDICT_BATCH to every player directly.
		var enc []byte
		if bs.sharded() {
			av := AggVerdict{Batch: fl.id, Count: uint32(fl.count), Present: bs.shardPresent, Bits: verdictBits}
			enc, err = AppendAggVerdict(bs.enc[:0], av)
		} else {
			vb := VerdictBatch{Batch: fl.id, Count: uint32(fl.count), Bits: verdictBits}
			enc, err = AppendVerdictBatch(bs.enc[:0], vb)
		}
		bs.enc = enc
		if err != nil {
			return bs.chunkErr(err)
		}
		for _, slot := range bs.slots {
			if slot.isDead() {
				continue
			}
			slot.q.push(enc)
		}
		// Wall time is shared evenly: the batch synchronized once for
		// count trials (the division remainder lands on the first trial so
		// the batch's summed wall time equals its elapsed time).
		engine.SpreadWall(results, sw.Elapsed())
		results[0].Retries = retries
		retries = 0
	}
	return nil
}

// chunkErr resolves the root cause of a strict-mode failure. A node
// that dies first (crash, rule error) leaves the referee only a bare
// transport error — EOF, closed pipe, blown deadline — so in that case
// the recorded node failure is the story, mirroring the unbatched
// paths. A descriptive referee-side error (echo-check mismatch, width
// violation) is itself the root cause: the node's subsequent EOF is the
// symptom of the referee closing the offending connection.
func (bs *batchSession) chunkErr(err error) error {
	if !bs.c.tolerant() {
		bs.cancel()
		bs.nodeWG.Wait()
		// A descriptive aggregator-recorded error (a member's protocol
		// violation escalated by failMember, or the aggregator's own) is a
		// root cause on par with a node crash.
		if aggErr := bs.peekAggErr(); aggErr != nil && !isTransportErr(aggErr) && (err == nil || isTransportErr(err)) {
			return aggErr
		}
		if nodeErr := bs.peekNodeErr(); nodeErr != nil && (err == nil || isTransportErr(err)) {
			return nodeErr
		}
		if aggErr := bs.peekAggErr(); aggErr != nil && (err == nil || isTransportErr(err)) {
			return aggErr
		}
	}
	return err
}

// isTransportErr reports whether err is a bare IO failure rather than a
// validated protocol violation.
func isTransportErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

// firstSlotErr reports why a strict-mode gather came up short. A
// descriptive protocol violation wins over bare transport errors: once
// one slot is failed the session tears down and every other in-flight
// gather dies with an EOF that is pure collateral.
func (bs *batchSession) firstSlotErr() error {
	var first error
	note := func(err error) error {
		if err != nil && !isTransportErr(err) {
			return err
		}
		if first == nil && err != nil {
			first = err
		}
		return nil
	}
	for _, slot := range bs.slots {
		slot.mu.Lock()
		err := slot.err
		slot.mu.Unlock()
		if root := note(err); root != nil {
			return root
		}
	}
	// On the sharded tree the violation may be a member's, recorded on
	// its aggregator-side slot (a.slots is published before AGG_HELLO,
	// which the root read before runChunk could run, so reading it here
	// is ordered).
	for _, a := range bs.aggs {
		for _, slot := range a.slots {
			if slot == nil {
				continue
			}
			slot.mu.Lock()
			err := slot.err
			slot.mu.Unlock()
			if root := note(err); root != nil {
				return root
			}
		}
	}
	if root := note(bs.peekAggErr()); root != nil {
		return root
	}
	if first != nil {
		return first
	}
	return fmt.Errorf("network: batch gather incomplete with no recorded slot failure")
}

// gather collects one batch's VOTE_BATCH (r = 1) or VOTE_BATCH_R
// (r > 1) from every live slot concurrently, validating the player,
// batch-id and width echoes and the trial count. Delivered plane sets
// land in bs.deliv by player id (nil = absent); it returns the number
// of valid deliveries.
func (bs *batchSession) gather(batchID uint32, count int) int {
	for i := range bs.deliv {
		bs.deliv[i] = nil
	}
	var wg sync.WaitGroup
	for _, slot := range bs.slots {
		if slot.isDead() {
			continue
		}
		wg.Add(1)
		//lint:ignore dut/hotalloc one reader goroutine per live member per batch, amortized across the batch's trials
		go func(slot *batchSlot) {
			defer wg.Done()
			conn := slot.sl.conn
			// The vote can lag the node's whole batch of sampling plus a
			// queued verdict write; budget two timeouts, like every other
			// cross-phase read.
			setReadDeadline(conn, 2*bs.server.timeout)
			var vb VoteBatchR
			if bs.msgBits == 1 {
				classic, err := expectFrame[VoteBatch](conn, FrameVoteBatch)
				if err != nil {
					bs.failSlot(slot, fmt.Errorf("network: vote batch from player %d: %w", slot.sl.player, err))
					return
				}
				vb = VoteBatchR{Player: classic.Player, Batch: classic.Batch, Count: classic.Count, Bits: 1, Planes: classic.Bits}
			} else {
				wide, err := expectFrame[VoteBatchR](conn, FrameVoteBatchR)
				if err != nil {
					bs.failSlot(slot, fmt.Errorf("network: vote batch from player %d: %w", slot.sl.player, err))
					return
				}
				vb = wide
			}
			if vb.Player != slot.sl.player {
				bs.failSlot(slot, fmt.Errorf("network: vote batch claims player %d on player %d's connection", vb.Player, slot.sl.player))
				return
			}
			if vb.Batch != batchID {
				bs.failSlot(slot, fmt.Errorf("network: player %d answered batch %d, expected %d", slot.sl.player, vb.Batch, batchID))
				return
			}
			if int(vb.Count) != count {
				bs.failSlot(slot, fmt.Errorf("network: player %d voted on %d trials of batch %d, expected %d", slot.sl.player, vb.Count, batchID, count))
				return
			}
			if int(vb.Bits) != bs.msgBits {
				bs.failSlot(slot, fmt.Errorf("network: player %d sent %d-bit votes, the rule uses %d bits", slot.sl.player, vb.Bits, bs.msgBits))
				return
			}
			bs.deliv[slot.sl.player] = vb.Planes
		}(slot)
	}
	wg.Wait()
	received := 0
	for _, d := range bs.deliv {
		if d != nil {
			received++
		}
	}
	return received
}

// decideBatch evaluates every trial of a gathered batch, filling one
// RoundResult per trial and returning the packed verdict bits. With all
// k votes in and a threshold-shaped (1-bit) or sum-shaped (r-bit)
// referee it evaluates the whole batch word-parallel; otherwise
// (partial batches, opaque referees) it reconstructs each trial's vote
// slate from the delivered planes and reuses decideVotes, so
// quorum checks and absentee policy are identical to the unbatched
// referee by construction.
func (bs *batchSession) decideBatch(count, received int, out []engine.RoundResult) ([]uint64, error) {
	words := batchWords(count)
	if cap(bs.verdictBits) < words {
		bs.verdictBits = make([]uint64, words)
	}
	verdictBits := bs.verdictBits[:words]
	clear(verdictBits)
	k := bs.c.k
	if bs.sharded() && (bs.shapeOK || bs.sumOK) {
		// Shaped sharded batches decide from the combined partial sums at
		// any presence: the adjusted threshold reproduces decideVotes'
		// absentee accounting exactly, so no per-trial fallback is needed.
		if err := bs.decideBatchShards(count, received, verdictBits); err != nil {
			return nil, err
		}
		for j := range out {
			out[j] = engine.RoundResult{
				Verdict:    verdictBits[j/64]>>(j%64)&1 == 1,
				Votes:      received,
				Stragglers: k - received,
				Messages:   received,
				Samples:    received * bs.c.q,
			}
		}
		return verdictBits, nil
	}
	if received == k && (bs.shapeOK || bs.sumOK) {
		if bs.shapeOK {
			bs.decideBatchThreshold(count, verdictBits)
		} else {
			bs.decideBatchSum(count, verdictBits)
		}
		for j := range out {
			out[j] = engine.RoundResult{
				Verdict:  verdictBits[j/64]>>(j%64)&1 == 1,
				Votes:    k,
				Messages: k,
				Samples:  k * bs.c.q,
			}
		}
		return verdictBits, nil
	}
	votes, got := bs.votes, bs.got
	for j := 0; j < count; j++ {
		for i := range votes {
			votes[i] = 0
			got[i] = false
		}
		for player, d := range bs.deliv {
			if d == nil {
				continue
			}
			var msg core.Message
			for b := 0; b < bs.msgBits; b++ {
				msg |= core.Message(d[b*words+j/64]>>(j%64)&1) << b
			}
			votes[player] = msg
			got[player] = true
		}
		accept, recv, err := bs.server.decideVotes(votes, got)
		out[j] = engine.RoundResult{
			Verdict:    accept,
			Votes:      recv,
			Stragglers: k - recv,
			Messages:   recv,
			Samples:    recv * bs.c.q,
		}
		if err != nil {
			return nil, err
		}
		if accept {
			verdictBits[j/64] |= 1 << (j % 64)
		}
	}
	return verdictBits, nil
}

// decideBatchThreshold evaluates "reject iff at least shapeT of k
// rejections" for 64 trials per word: the rejection count of every lane
// is accumulated into bit-sliced counter planes by ripple-carry
// addition of each player's inverted vote word, then compared against
// the threshold in one pass. Padding lanes above count are masked off
// so the verdict bitset stays wire-legal.
//
//dut:hotpath
func (bs *batchSession) decideBatchThreshold(count int, verdictBits []uint64) {
	planes := bs.planes
	for w := range verdictBits {
		for i := range planes {
			planes[i] = 0
		}
		for _, d := range bs.deliv {
			carry := ^d[w] // 1 = rejection
			for i := 0; i < len(planes) && carry != 0; i++ {
				next := planes[i] & carry
				planes[i] ^= carry
				carry = next
			}
		}
		verdictBits[w] = ^atLeast(planes, bs.shapeT)
	}
	if rem := count % 64; rem != 0 {
		verdictBits[len(verdictBits)-1] &= 1<<rem - 1
	}
}

// decideBatchSum evaluates "reject iff the k r-bit values sum to at
// least sumT" for 64 trials per word: each player's value planes are
// accumulated into the bit-sliced counter planes by ripple-carry
// addition starting at plane b (adding 2^b per set lane of message
// plane b), then every lane's sum is compared against the threshold in
// one pass — the r-bit counterpart of decideBatchThreshold. Padding
// lanes above count are masked off so the verdict bitset stays
// wire-legal.
//
//dut:hotpath
func (bs *batchSession) decideBatchSum(count int, verdictBits []uint64) {
	planes := bs.planes
	words := batchWords(count)
	for w := range verdictBits {
		for i := range planes {
			planes[i] = 0
		}
		for _, d := range bs.deliv {
			for b := 0; b < bs.msgBits; b++ {
				carry := d[b*words+w]
				for i := b; i < len(planes) && carry != 0; i++ {
					next := planes[i] & carry
					planes[i] ^= carry
					carry = next
				}
			}
		}
		verdictBits[w] = ^atLeast(planes, bs.sumT)
	}
	if rem := count % 64; rem != 0 {
		verdictBits[len(verdictBits)-1] &= 1<<rem - 1
	}
}

// atLeast returns a word with bit j set iff lane j's bit-sliced counter
// is at least t; planes[i] holds bit i of every lane's counter.
func atLeast(planes []uint64, t int) uint64 {
	if t <= 0 {
		return ^uint64(0)
	}
	if len(planes) < 63 && t >= 1<<len(planes) {
		return 0
	}
	ge, eq := uint64(0), ^uint64(0)
	for i := len(planes) - 1; i >= 0; i-- {
		var tb uint64
		if t>>i&1 == 1 {
			tb = ^uint64(0)
		}
		ge |= eq & planes[i] &^ tb
		eq &= ^(planes[i] ^ tb)
	}
	return ge | eq
}

// Close finishes the session: FINISH rides each slot's queue behind any
// pending verdicts, the writers drain and exit, the nodes unwind, and
// the connections close.
func (bs *batchSession) Close() error {
	finish := AppendFinish(nil)
	for _, slot := range bs.slots {
		slot.q.push(finish)
		slot.q.close()
	}
	for _, slot := range bs.slots {
		<-slot.writerDone
	}
	// Sharded: FINISH is now on the wire to every aggregator; each one
	// relays it, drains its pending reductions and exits. Wait for them
	// before cancelling so a clean shutdown never races the force-close.
	for _, a := range bs.aggs {
		<-a.done
	}
	bs.cancel()
	bs.nodeWG.Wait()
	if bs.sess != nil {
		bs.sess.close()
	}
	if bs.trackStop != nil {
		bs.trackStop()
		bs.tracker.closeAll()
	}
	for _, l := range bs.aggListeners {
		if l != nil {
			_ = l.Close()
		}
	}
	_ = bs.listener.Close()
	if !bs.c.tolerant() {
		return bs.peekNodeErr()
	}
	return nil
}

// setReadDeadline bounds only reads: the batch session's slot writer
// owns the same connection's write deadline concurrently, and a full
// SetDeadline from either side would clobber the other's budget.
func setReadDeadline(conn net.Conn, d time.Duration) {
	//lint:ignore dut/nondeterminism net deadlines need an absolute instant; bounds frame IO waits, never the verdict
	_ = conn.SetReadDeadline(time.Now().Add(d))
}

// setWriteDeadline is setReadDeadline's write-side counterpart.
func setWriteDeadline(conn net.Conn, d time.Duration) {
	//lint:ignore dut/nondeterminism net deadlines need an absolute instant; bounds frame IO waits, never the verdict
	_ = conn.SetWriteDeadline(time.Now().Add(d))
}
