package network

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakePlayer dials the listener and runs script against the connection;
// errors are ignored (the referee's verdict on the exchange is what the
// tests assert).
func fakePlayer(t *testing.T, m *MemTransport, addr net.Addr, script func(conn net.Conn)) {
	t.Helper()
	conn, err := m.Dial(addr)
	if err != nil {
		return
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	script(conn)
}

func TestRefereeRejectsDuplicatePlayerID(t *testing.T) {
	// Regression: two nodes claiming the same id used to both get slots,
	// with votes indexed by accept order.
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(2, andReferee(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fakePlayer(t, m, l.Addr(), func(conn net.Conn) {
				if err := WriteHello(conn, Hello{Player: 0, Bits: 1}); err != nil {
					return
				}
				if _, err := expectFrame[Round](conn, FrameRound); err != nil {
					return
				}
				_ = WriteVote(conn, Vote{Player: 0, Message: 1})
			})
		}()
	}
	_, err = server.RunRound(context.Background(), l, 7)
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "duplicate player id") {
		t.Errorf("err = %v, want duplicate-player-id error", err)
	}
}

func TestRefereeRejectsOutOfRangePlayerID(t *testing.T) {
	// Regression: an id >= k used to be accepted silently.
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(1, andReferee(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go fakePlayer(t, m, l.Addr(), func(conn net.Conn) {
		_ = WriteHello(conn, Hello{Player: 5, Bits: 1})
	})
	if _, err := server.RunRound(context.Background(), l, 7); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v, want out-of-range error", err)
	}
}

func TestRefereeEnforcesAnnouncedBits(t *testing.T) {
	// Regression: a rule announcing 1 bit could send a 64-bit message and
	// the referee would feed it to the decision function unchecked.
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(1, andReferee(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go fakePlayer(t, m, l.Addr(), func(conn net.Conn) {
		if err := WriteHello(conn, Hello{Player: 0, Bits: 1}); err != nil {
			return
		}
		if _, err := expectFrame[Round](conn, FrameRound); err != nil {
			return
		}
		_ = WriteVote(conn, Vote{Player: 0, Message: 2})
	})
	if _, err := server.RunRound(context.Background(), l, 7); err == nil || !strings.Contains(err.Error(), "announced") {
		t.Errorf("err = %v, want bits-enforcement error", err)
	}
}

func TestRefereeNegotiatesMessageWidth(t *testing.T) {
	// With the rule's width pinned on the server, a node announcing a
	// different width in HELLO fails the handshake with a named-player,
	// named-widths error rather than a generic rejection.
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(1, andReferee(), time.Second, WithMessageBits(2))
	if err != nil {
		t.Fatal(err)
	}
	go fakePlayer(t, m, l.Addr(), func(conn net.Conn) {
		_ = WriteHello(conn, Hello{Player: 0, Bits: 7})
	})
	_, err = server.RunRound(context.Background(), l, 7)
	if err == nil {
		t.Fatal("width mismatch accepted, want handshake error")
	}
	for _, want := range []string{"player 0", "7-bit", "2-bit"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err = %v, want it to name %q", err, want)
		}
	}
}

func TestRefereeAcceptsFullWidthMessages(t *testing.T) {
	// A 64-bit announcement admits any message (no 1<<64 overflow).
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(1, andReferee(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go fakePlayer(t, m, l.Addr(), func(conn net.Conn) {
		if err := WriteHello(conn, Hello{Player: 0, Bits: 64}); err != nil {
			return
		}
		if _, err := expectFrame[Round](conn, FrameRound); err != nil {
			return
		}
		if err := WriteVote(conn, Vote{Player: 0, Message: ^uint64(0)}); err != nil {
			return
		}
		_, _ = expectFrame[Verdict](conn, FrameVerdict)
	})
	if _, err := server.RunRound(context.Background(), l, 7); err != nil {
		t.Errorf("full-width message rejected: %v", err)
	}
}

func TestVerdictBroadcastSurvivesSlowRound(t *testing.T) {
	// Regression: the VERDICT broadcast used to reuse the deadline set
	// before vote gathering, so a round whose vote phase plus verdict
	// delivery outlasted one timeout failed spuriously even though every
	// individual frame wait was within budget.
	const timeout = 600 * time.Millisecond
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(1, andReferee(), timeout)
	if err != nil {
		t.Fatal(err)
	}
	verdictSeen := make(chan bool, 1)
	go fakePlayer(t, m, l.Addr(), func(conn net.Conn) {
		if err := WriteHello(conn, Hello{Player: 0, Bits: 1}); err != nil {
			return
		}
		if _, err := expectFrame[Round](conn, FrameRound); err != nil {
			return
		}
		time.Sleep(400 * time.Millisecond) // slow, but within the per-frame budget
		if err := WriteVote(conn, Vote{Player: 0, Message: 1}); err != nil {
			return
		}
		time.Sleep(400 * time.Millisecond) // verdict pickup past the stale deadline
		v, err := expectFrame[Verdict](conn, FrameVerdict)
		if err != nil {
			return
		}
		verdictSeen <- v.Accept
	})
	accept, err := server.RunRound(context.Background(), l, 7)
	if err != nil {
		t.Fatalf("slow round failed: %v", err)
	}
	if !accept {
		t.Error("verdict = reject, want accept")
	}
	select {
	case v := <-verdictSeen:
		if !v {
			t.Error("player saw reject")
		}
	case <-time.After(3 * time.Second):
		t.Error("player never received the verdict")
	}
}

func TestSessionVerdictBroadcastSurvivesSlowRound(t *testing.T) {
	// Same regression as above, on the session path.
	const timeout = 600 * time.Millisecond
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	server, err := NewRefereeServer(1, andReferee(), timeout)
	if err != nil {
		t.Fatal(err)
	}
	finished := make(chan struct{})
	go fakePlayer(t, m, l.Addr(), func(conn net.Conn) {
		if err := WriteHello(conn, Hello{Player: 0, Bits: 1}); err != nil {
			return
		}
		if _, err := expectFrame[Round](conn, FrameRound); err != nil {
			return
		}
		time.Sleep(400 * time.Millisecond)
		if err := WriteVote(conn, Vote{Player: 0, Message: 1}); err != nil {
			return
		}
		time.Sleep(400 * time.Millisecond)
		if _, err := expectFrame[Verdict](conn, FrameVerdict); err != nil {
			return
		}
		if _, err := expectFrame[Finish](conn, FrameFinish); err != nil {
			return
		}
		close(finished)
	})
	verdicts, err := server.RunSession(context.Background(), l, []uint64{7})
	if err != nil {
		t.Fatalf("slow session round failed: %v", err)
	}
	if len(verdicts) != 1 || !verdicts[0] {
		t.Errorf("verdicts = %v", verdicts)
	}
	select {
	case <-finished:
	case <-time.After(3 * time.Second):
		t.Error("player never reached FINISH")
	}
}
