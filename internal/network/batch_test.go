package network

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/engine"
)

// Chaos over the batch pipeline: the fault invariant — every injected
// fault surfaces as a validated protocol error or a tolerated straggler,
// never a silent wrong verdict — must hold when votes travel as packed
// VOTE_BATCH bitsets, and the per-trial quorum accounting must stay
// accurate within partially-delivered batches.

// batchChaosPlans adapts the chaos mix to batch framing with batch=4:
// each VOTE_BATCH covers four rounds, so CrashAtRound and CorruptFrame
// land on whole batches.
//   - player 1 crashes writing its first VOTE_BATCH (absent throughout),
//   - player 2 crashes writing its second VOTE_BATCH (absent from trial 4),
//   - player 3 is slowed on every frame but completes,
//   - player 4's second VOTE_BATCH has its batch id corrupted, tripping
//     the referee's echo check (absent from trial 4),
//   - player 5 recovers a dropped dial with one retry,
//   - player 6 never connects at all.
func batchChaosPlans() map[uint32]FaultPlan {
	return map[uint32]FaultPlan{
		1: {CrashAtRound: 1},
		2: {CrashAtRound: 6},
		3: {Delay: 2 * time.Millisecond},
		4: {CorruptFrame: 3}, // frames: HELLO=1, VOTE_BATCH b0=2, b1=3
		5: {DropDials: 1},
		6: {DropDials: 100},
	}
}

func TestBatchSessionSurvivesChaos(t *testing.T) {
	const (
		trials = 10 // batches of 4, 4 and a partial 2
		batch  = 4
	)
	for _, tt := range []struct {
		name string
		even bool
		want bool
	}{
		{name: "all-even accepts", even: true, want: true},
		{name: "all-odd rejects", even: false, want: false},
	} {
		t.Run(tt.name, func(t *testing.T) {
			ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
				Seed:  99,
				Plans: batchChaosPlans(),
			})
			if err != nil {
				t.Fatal(err)
			}
			c := chaosCluster(t, ft)
			b, err := NewBackend(c)
			if err != nil {
				t.Fatal(err)
			}
			// One worker keeps a single session alive across all chunks, so
			// the per-connection fault plans fire exactly once.
			results, err := engine.Run(context.Background(), b, engine.Fixed(paritySampler(t, tt.even)), trials,
				engine.Options{Seed: 5, Workers: 1, Batch: batch, Window: 1})
			if err != nil {
				t.Fatalf("batch chaos run failed: %v", err)
			}
			if len(results) != trials {
				t.Fatalf("got %d results, want %d", len(results), trials)
			}
			retries := 0
			for i, r := range results {
				// Trials 0..3: players 1 (crashed on batch 0) and 6 (never
				// connected) are out. Trial 4 on: players 2 (crashed) and 4
				// (corrupted batch id) drop too — including the partial
				// final batch.
				wantStragglers := 2
				if i >= 4 {
					wantStragglers = 4
				}
				if r.Stragglers != wantStragglers {
					t.Errorf("trial %d stragglers = %d, want %d", i, r.Stragglers, wantStragglers)
				}
				if r.Votes != 16-wantStragglers {
					t.Errorf("trial %d votes = %d, want %d", i, r.Votes, 16-wantStragglers)
				}
				if r.Verdict != tt.want {
					t.Errorf("trial %d verdict = %v, want %v", i, r.Verdict, tt.want)
				}
				retries += r.Retries
			}
			// Player 5 burned one retry recovering its dropped dial; player 6
			// exhausted its default budget of two retries in vain.
			if retries != 3 {
				t.Errorf("total retries = %d, want 3", retries)
			}
			fs := ft.Stats()
			if fs.Crashes != 2 || fs.FramesCorrupted != 1 || fs.DialsDropped != 4 {
				t.Errorf("fault stats = %+v, want 2 crashes, 1 corruption, 4 dropped dials", fs)
			}
		})
	}
}

func TestBatchStrictModeFailsOnCrash(t *testing.T) {
	// Without MinVotes the seed semantics stand: a crash inside any batch
	// aborts the run instead of shading the verdict.
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Plans: map[uint32]FaultPlan{0: {CrashAtRound: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K:         4,
		Q:         1,
		Rule:      acceptAllRule(),
		Referee:   andReferee(),
		Transport: ft,
		Timeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Run(context.Background(), b, engine.Fixed(uniformSampler(t, 4)), 8,
		engine.Options{Seed: 5, Workers: 1, Batch: 4, Window: 2})
	if err == nil {
		t.Error("strict batch run tolerated a crash")
	}
}

func TestBatchCorruptionDetectedStrict(t *testing.T) {
	// A corrupted VOTE_BATCH id must surface as a validated echo-check
	// error, never as silently misrouted votes.
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Seed:  3,
		Plans: map[uint32]FaultPlan{1: {CorruptFrame: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K:         4,
		Q:         1,
		Rule:      acceptAllRule(),
		Referee:   andReferee(),
		Transport: ft,
		Timeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Run(context.Background(), b, engine.Fixed(uniformSampler(t, 4)), 4,
		engine.Options{Seed: 5, Workers: 1, Batch: 4, Window: 1})
	if err == nil || !strings.Contains(err.Error(), "batch") {
		t.Errorf("err = %v, want a batch echo-check error", err)
	}
}
