package network

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, Hello{Player: 7, Bits: 3}); err != nil {
		t.Fatal(err)
	}
	if err := WriteRound(&buf, Round{Seed: 0xdeadbeefcafe}); err != nil {
		t.Fatal(err)
	}
	if err := WriteVote(&buf, Vote{Player: 7, Message: 42}); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerdict(&buf, Verdict{Accept: true}); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerdict(&buf, Verdict{Accept: false}); err != nil {
		t.Fatal(err)
	}

	typ, msg, err := ReadFrame(&buf)
	if err != nil || typ != FrameHello {
		t.Fatalf("hello: %v %v %v", typ, msg, err)
	}
	if h := msg.(Hello); h.Player != 7 || h.Bits != 3 {
		t.Errorf("hello = %+v", h)
	}
	typ, msg, err = ReadFrame(&buf)
	if err != nil || typ != FrameRound {
		t.Fatalf("round: %v %v", typ, err)
	}
	if r := msg.(Round); r.Seed != 0xdeadbeefcafe {
		t.Errorf("round = %+v", r)
	}
	typ, msg, err = ReadFrame(&buf)
	if err != nil || typ != FrameVote {
		t.Fatalf("vote: %v %v", typ, err)
	}
	if v := msg.(Vote); v.Player != 7 || v.Message != 42 {
		t.Errorf("vote = %+v", v)
	}
	typ, msg, err = ReadFrame(&buf)
	if err != nil || typ != FrameVerdict || !msg.(Verdict).Accept {
		t.Fatalf("verdict true: %v %v %v", typ, msg, err)
	}
	typ, msg, err = ReadFrame(&buf)
	if err != nil || typ != FrameVerdict || msg.(Verdict).Accept {
		t.Fatalf("verdict false: %v %v %v", typ, msg, err)
	}
}

func TestReadFrameRejectsBadMagic(t *testing.T) {
	buf := []byte{0x00, 0x01, 1, 1, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(buf)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
}

func TestReadFrameRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVerdict(&buf, Verdict{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var header [8]byte
	binary.BigEndian.PutUint16(header[0:2], Magic)
	header[2] = Version
	header[3] = byte(FrameVote)
	binary.BigEndian.PutUint32(header[4:8], MaxFrameSize+1)
	if _, _, err := ReadFrame(bytes.NewReader(header[:])); err == nil || !strings.Contains(err.Error(), "oversized") {
		t.Errorf("oversized: %v", err)
	}
}

func TestReadFrameRejectsTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVote(&buf, Vote{Player: 1, Message: 2}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader(raw[:4])); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReadFrameRejectsWrongPayloadSizes(t *testing.T) {
	mk := func(t FrameType, size int) []byte {
		var header [8]byte
		binary.BigEndian.PutUint16(header[0:2], Magic)
		header[2] = Version
		header[3] = byte(t)
		binary.BigEndian.PutUint32(header[4:8], uint32(size))
		return append(header[:], make([]byte, size)...)
	}
	for _, tt := range []struct {
		t    FrameType
		size int
	}{
		{FrameHello, 4}, {FrameRound, 7}, {FrameVote, 11}, {FrameVerdict, 2},
	} {
		if _, _, err := ReadFrame(bytes.NewReader(mk(tt.t, tt.size))); err == nil {
			t.Errorf("%v with %d-byte payload accepted", tt.t, tt.size)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(mk(FrameType(9), 0))); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestReadFrameRejectsMalformedVerdictByte(t *testing.T) {
	// Regression: only 0x00 and 0x01 are legal VERDICT encodings; any
	// other byte used to decode silently as Accept=false.
	for _, b := range []byte{2, 3, 0x7F, 0xFF} {
		var header [8]byte
		binary.BigEndian.PutUint16(header[0:2], Magic)
		header[2] = Version
		header[3] = byte(FrameVerdict)
		binary.BigEndian.PutUint32(header[4:8], 1)
		frame := append(header[:], b)
		if _, _, err := ReadFrame(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "VERDICT") {
			t.Errorf("VERDICT byte %#x: err = %v, want malformed-verdict error", b, err)
		}
	}
	// The two legal bytes still decode.
	for b, want := range map[byte]bool{0: false, 1: true} {
		var buf bytes.Buffer
		if err := WriteVerdict(&buf, Verdict{Accept: want}); err != nil {
			t.Fatal(err)
		}
		typ, msg, err := ReadFrame(&buf)
		if err != nil || typ != FrameVerdict || msg.(Verdict).Accept != want {
			t.Errorf("VERDICT byte %#x: (%v, %v, %v)", b, typ, msg, err)
		}
	}
}

func TestExpectFrameTypeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRound(&buf, Round{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := expectFrame[Vote](&buf, FrameVote); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestWriteFrameRejectsHugePayload(t *testing.T) {
	if err := writeFrame(io.Discard, FrameVote, make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameHello.String() != "HELLO" || FrameVerdict.String() != "VERDICT" {
		t.Error("frame names wrong")
	}
	if !strings.Contains(FrameType(77).String(), "77") {
		t.Error("unknown frame name wrong")
	}
}
