package network

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// This file implements multi-round sessions: the referee keeps the k
// player connections open and runs the ROUND/VOTE/VERDICT exchange
// repeatedly, closing with FINISH. Sessions amortize connection setup over
// amplification rounds (see core.Amplify for the statistics side) — the
// shape a deployed alarm network actually has, where sensors hold a
// long-lived connection and get polled periodically.

// RunSession accepts k player connections and runs one
// ROUND/VOTE/VERDICT exchange per seed, then broadcasts FINISH. It returns
// the per-round verdicts. Connections are closed before returning; the
// listener stays open.
func (s *RefereeServer) RunSession(ctx context.Context, l net.Listener, seeds []uint64) ([]bool, error) {
	if l == nil {
		return nil, fmt.Errorf("network: nil listener")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("network: session with zero rounds")
	}

	var (
		connMu sync.Mutex
		conns  []net.Conn
	)
	track := func(c net.Conn) {
		connMu.Lock()
		conns = append(conns, c)
		connMu.Unlock()
	}
	closeAll := func() {
		connMu.Lock()
		for _, c := range conns {
			_ = c.Close()
		}
		connMu.Unlock()
	}
	defer closeAll()
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watchdogDone:
		}
	}()

	type slot struct {
		conn   net.Conn
		player uint32
	}
	slots := make([]slot, 0, s.k)
	for len(slots) < s.k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		conn, err := l.Accept()
		if err != nil {
			return nil, fmt.Errorf("network: accept: %w", err)
		}
		track(conn)
		setDeadline(conn, s.timeout)
		hello, err := expectFrame[Hello](conn, FrameHello)
		if err != nil {
			return nil, fmt.Errorf("network: hello: %w", err)
		}
		if hello.Bits < 1 || hello.Bits > 64 {
			return nil, fmt.Errorf("network: player %d announced %d message bits", hello.Player, hello.Bits)
		}
		slots = append(slots, slot{conn: conn, player: hello.Player})
	}

	verdicts := make([]bool, 0, len(seeds))
	votes := make([]core.Message, s.k)
	for _, seed := range seeds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		for i, sl := range slots {
			wg.Add(1)
			go func(i int, sl slot) {
				defer wg.Done()
				setDeadline(sl.conn, s.timeout)
				if err := WriteRound(sl.conn, Round{Seed: seed}); err != nil {
					fail(fmt.Errorf("network: round to player %d: %w", sl.player, err))
					return
				}
				vote, err := expectFrame[Vote](sl.conn, FrameVote)
				if err != nil {
					fail(fmt.Errorf("network: vote from player %d: %w", sl.player, err))
					return
				}
				if vote.Player != sl.player {
					fail(fmt.Errorf("network: vote claims player %d on player %d's connection", vote.Player, sl.player))
					return
				}
				votes[i] = core.Message(vote.Message)
			}(i, sl)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		accept, err := s.decide.Decide(votes)
		if err != nil {
			return nil, fmt.Errorf("network: referee decision: %w", err)
		}
		for _, sl := range slots {
			if err := WriteVerdict(sl.conn, Verdict{Accept: accept}); err != nil {
				return nil, fmt.Errorf("network: verdict to player %d: %w", sl.player, err)
			}
		}
		verdicts = append(verdicts, accept)
	}
	for _, sl := range slots {
		setDeadline(sl.conn, s.timeout)
		if err := WriteFinish(sl.conn); err != nil {
			return nil, fmt.Errorf("network: finish to player %d: %w", sl.player, err)
		}
	}
	return verdicts, nil
}

// RunSession participates in a multi-round session: the node keeps its
// connection open, answers every ROUND with a fresh sample batch and VOTE,
// records each VERDICT, and exits on FINISH.
func (p *PlayerNode) RunSession(tr Transport, addr net.Addr, rng *rand.Rand) ([]bool, error) {
	if tr == nil {
		return nil, fmt.Errorf("network: nil transport")
	}
	if rng == nil {
		return nil, fmt.Errorf("network: nil rng")
	}
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("network: node %d dial: %w", p.id, err)
	}
	defer func() { _ = conn.Close() }()
	setDeadline(conn, p.timeout)

	if err := WriteHello(conn, Hello{Player: p.id, Bits: uint8(p.rule.Bits())}); err != nil {
		return nil, fmt.Errorf("network: node %d hello: %w", p.id, err)
	}
	var verdicts []bool
	for {
		setDeadline(conn, p.timeout)
		t, msg, err := ReadFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("network: node %d read: %w", p.id, err)
		}
		switch m := msg.(type) {
		case Round:
			samples := dist.SampleN(p.sampler, p.q, rng)
			vote, err := p.rule.Message(int(p.id), samples, m.Seed, rng)
			if err != nil {
				return nil, fmt.Errorf("network: node %d rule: %w", p.id, err)
			}
			if err := WriteVote(conn, Vote{Player: p.id, Message: uint64(vote)}); err != nil {
				return nil, fmt.Errorf("network: node %d vote: %w", p.id, err)
			}
		case Verdict:
			verdicts = append(verdicts, m.Accept)
		case Finish:
			return verdicts, nil
		default:
			return nil, fmt.Errorf("network: node %d got unexpected %v mid-session", p.id, t)
		}
	}
}

// RunMany runs a multi-round session end to end: one connection per node
// for all rounds, one verdict per round. The majority of the verdicts is
// the amplified decision (see core.Amplify).
func (c *Cluster) RunMany(ctx context.Context, sampler dist.Sampler, rng *rand.Rand, rounds int) ([]bool, error) {
	if sampler == nil {
		return nil, fmt.Errorf("network: nil sampler")
	}
	if rng == nil {
		return nil, fmt.Errorf("network: nil rng")
	}
	if rounds < 1 {
		return nil, fmt.Errorf("network: session with %d rounds", rounds)
	}
	server, err := NewRefereeServer(c.k, c.referee, c.timeout)
	if err != nil {
		return nil, err
	}
	listener, err := c.tr.Listen()
	if err != nil {
		return nil, fmt.Errorf("network: listen: %w", err)
	}
	defer func() { _ = listener.Close() }()
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = listener.Close()
		case <-watchdogDone:
		}
	}()

	seeds := make([]uint64, rounds)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}

	type nodeResult struct {
		verdicts []bool
		err      error
	}
	results := make(chan nodeResult, c.k)
	var wg sync.WaitGroup
	for i := 0; i < c.k; i++ {
		node, err := NewPlayerNode(uint32(i), c.q, c.rule, sampler, c.timeout)
		if err != nil {
			return nil, err
		}
		nodeRng := rand.New(rand.NewPCG(rng.Uint64(), rng.Uint64()))
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := node.RunSession(c.tr, listener.Addr(), nodeRng)
			results <- nodeResult{verdicts: v, err: err}
		}()
	}

	verdicts, refErr := server.RunSession(ctx, listener, seeds)

	nodesDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(nodesDone)
	}()
	select {
	case <-nodesDone:
	case <-ctx.Done():
		if refErr != nil {
			return nil, refErr
		}
		return nil, ctx.Err()
	}
	close(results)
	if refErr != nil {
		return nil, refErr
	}
	for r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if len(r.verdicts) != len(verdicts) {
			return nil, fmt.Errorf("network: node saw %d verdicts, referee issued %d", len(r.verdicts), len(verdicts))
		}
		for i := range r.verdicts {
			if r.verdicts[i] != verdicts[i] {
				return nil, fmt.Errorf("network: node verdict %d disagrees with referee", i)
			}
		}
	}
	return verdicts, nil
}

// MajorityVerdict reduces a session's verdicts to the amplified decision.
func MajorityVerdict(verdicts []bool) (bool, error) {
	if len(verdicts) == 0 {
		return false, fmt.Errorf("network: majority of zero verdicts")
	}
	accepts := 0
	for _, v := range verdicts {
		if v {
			accepts++
		}
	}
	return 2*accepts > len(verdicts), nil
}
