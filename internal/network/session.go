package network

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/engine"
)

// This file implements multi-round sessions: the referee keeps the k
// player connections open and runs the ROUND/VOTE/VERDICT exchange
// repeatedly, closing with FINISH. Sessions amortize connection setup over
// amplification rounds (see core.Amplify for the statistics side) — the
// shape a deployed alarm network actually has, where sensors hold a
// long-lived connection and get polled periodically. In quorum mode a
// slot that dies mid-session (crash, timeout, protocol violation) is
// excluded from later rounds and counted as a straggler in each round's
// RoundStats instead of aborting the session. The multi-round trial loop
// itself is the unified engine driver: RunManyStats steps the session
// through a single-worker engine backend, so the session shares the
// per-round RoundResult accounting and seed derivation of every other
// backend.

// session is the referee's live multi-round state: the accepted player
// slots plus the per-round scratch buffers. It steps one round at a time
// so callers (the engine's session backend) can interleave bookkeeping.
type session struct {
	s     *RefereeServer
	slots []*playerSlot
	tr    *connTracker
	stop  func()
	votes []core.Message
	got   []bool
	start engine.Stopwatch
	round int
}

// startSession accepts the player connections and returns the stepping
// handle. The caller must call close (and usually finish) when done.
func (s *RefereeServer) startSession(ctx context.Context, l net.Listener) (*session, error) {
	if l == nil {
		return nil, fmt.Errorf("network: nil listener")
	}
	tr := &connTracker{}
	stop := tr.watch(ctx)
	sw := engine.StartStopwatch()
	slots, err := s.acceptPlayers(ctx, l, tr)
	if err != nil {
		stop()
		tr.closeAll()
		return nil, err
	}
	return &session{
		s:     s,
		slots: slots,
		tr:    tr,
		stop:  stop,
		votes: make([]core.Message, s.k),
		got:   make([]bool, s.k),
		start: sw,
	}, nil
}

// runRound executes one ROUND/VOTE/VERDICT exchange with the given
// public-coin seed. The first round's wall time is charged from the
// accept phase's start.
func (sess *session) runRound(ctx context.Context, seed uint64) (bool, RoundStats, error) {
	var stats RoundStats
	if err := ctx.Err(); err != nil {
		return false, stats, err
	}
	roundSW := engine.StartStopwatch()
	if sess.round == 0 {
		roundSW = sess.start // charge the accept phase to the first round
	}
	round := sess.round
	sess.round++
	if err := sess.s.gatherVotes(seed, sess.slots, sess.votes, sess.got); err != nil {
		return false, stats, err
	}
	accept, received, err := sess.s.decideVotes(sess.votes, sess.got)
	stats = RoundStats{
		Round:      round,
		Votes:      received,
		Stragglers: sess.s.k - received,
		Wall:       roundSW.Elapsed(),
		Verdict:    accept,
	}
	if err != nil {
		return false, stats, err
	}
	if err := sess.s.broadcastVerdict(sess.slots, accept); err != nil {
		return false, stats, err
	}
	stats.Wall = roundSW.Elapsed()
	return accept, stats, nil
}

// finish broadcasts FINISH to every live slot, releasing the nodes.
func (sess *session) finish() error {
	for _, sl := range sess.slots {
		if sl.dead {
			continue
		}
		setDeadline(sl.conn, sess.s.timeout)
		if err := WriteFinish(sl.conn); err != nil {
			if sess.s.strict() {
				return fmt.Errorf("network: finish to player %d: %w", sl.player, err)
			}
			sl.dead = true
			_ = sl.conn.Close()
		}
	}
	return nil
}

// close releases the session's connections and its context watchdog.
func (sess *session) close() {
	sess.stop()
	sess.tr.closeAll()
}

// RunSessionStats accepts player connections and runs one
// ROUND/VOTE/VERDICT exchange per seed, then broadcasts FINISH. It
// returns the per-round verdicts and per-round statistics. Connections
// are closed before returning; the listener stays open.
func (s *RefereeServer) RunSessionStats(ctx context.Context, l net.Listener, seeds []uint64) ([]bool, []RoundStats, error) {
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("network: session with zero rounds")
	}
	sess, err := s.startSession(ctx, l)
	if err != nil {
		return nil, nil, err
	}
	defer sess.close()

	verdicts := make([]bool, 0, len(seeds))
	allStats := make([]RoundStats, 0, len(seeds))
	for _, seed := range seeds {
		accept, stats, err := sess.runRound(ctx, seed)
		if err != nil {
			return nil, nil, err
		}
		verdicts = append(verdicts, accept)
		allStats = append(allStats, stats)
	}
	if err := sess.finish(); err != nil {
		return nil, nil, err
	}
	return verdicts, allStats, nil
}

// RunSession is RunSessionStats without the statistics, kept for callers
// that only need the verdicts.
func (s *RefereeServer) RunSession(ctx context.Context, l net.Listener, seeds []uint64) ([]bool, error) {
	verdicts, _, err := s.RunSessionStats(ctx, l, seeds)
	return verdicts, err
}

// RunSessionStats participates in a multi-round session: the node
// connects (with retry-with-backoff on dial and HELLO), answers every
// ROUND with a fresh sample batch and VOTE, records each VERDICT, and
// exits on FINISH. It returns the verdicts seen and the number of
// connect retries spent. Each round's sampling and private coins derive
// from that ROUND's public-coin seed and the node id (engine.NodeRNG),
// exactly like the single-round path.
func (p *PlayerNode) RunSessionStats(tr Transport, addr net.Addr) ([]bool, int, error) {
	if tr == nil {
		return nil, 0, fmt.Errorf("network: nil transport")
	}
	conn, retries, err := p.connect(tr, addr)
	if err != nil {
		return nil, retries, err
	}
	defer func() { _ = conn.Close() }()
	verdicts, err := p.runSessionConn(conn, true)
	return verdicts, retries, err
}

// runSessionConn is the node's frame loop over an established
// connection: answer ROUND/ROUND_BATCH, record VERDICT/VERDICT_BATCH
// (only when collect is set — the engine's long-lived batch sessions
// would otherwise grow the slice without bound), exit on FINISH.
func (p *PlayerNode) runSessionConn(conn net.Conn, collect bool) ([]bool, error) {
	var verdicts []bool
	for {
		// Referee frames can lag a full referee phase behind — the quorum
		// accept phase before the first ROUND, a slow peer's vote before a
		// VERDICT — so reads get a two-timeout budget.
		setDeadline(conn, 2*p.timeout)
		t, msg, err := ReadFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("network: node %d read: %w", p.id, err)
		}
		switch m := msg.(type) {
		case Round:
			rng := p.rng.SeedNode(m.Seed, int(p.id))
			dist.SampleInto(p.sampler, p.buf, rng)
			vote, err := p.rule.Message(int(p.id), p.buf, m.Seed, rng)
			if err != nil {
				return nil, fmt.Errorf("network: node %d rule: %w", p.id, err)
			}
			setDeadline(conn, p.timeout)
			if err := WriteVote(conn, Vote{Player: p.id, Message: uint64(vote)}); err != nil {
				return nil, fmt.Errorf("network: node %d vote: %w", p.id, err)
			}
		case RoundBatch:
			if err := p.voteBatch(conn, m); err != nil {
				return nil, err
			}
		case Verdict:
			if collect {
				verdicts = append(verdicts, m.Accept)
			}
		case VerdictBatch:
			if collect {
				for j := 0; j < int(m.Count); j++ {
					verdicts = append(verdicts, m.Bits[j/64]>>(j%64)&1 == 1)
				}
			}
		case Finish:
			return verdicts, nil
		default:
			return nil, fmt.Errorf("network: node %d got unexpected %v mid-session", p.id, t)
		}
	}
}

// RunSession is RunSessionStats without the retry count.
func (p *PlayerNode) RunSession(tr Transport, addr net.Addr) ([]bool, error) {
	verdicts, _, err := p.RunSessionStats(tr, addr)
	return verdicts, err
}

// sessionBackend steps one live referee session through the engine
// driver: trial t maps to the session's round t with public coin
// engine.SharedSeed(spec.Seed, t). Rounds over one set of connections
// are inherently ordered, so the backend caps the driver at one worker;
// the sampler in the RoundSpec is ignored — the nodes hold theirs.
type sessionBackend struct {
	sess *session
	k, q int
}

// Players implements engine.Backend.
func (b *sessionBackend) Players() int { return b.k }

// MaxWorkers implements engine.WorkerLimiter: session rounds serialize.
func (b *sessionBackend) MaxWorkers() int { return 1 }

// RunRound implements engine.Backend.
func (b *sessionBackend) RunRound(ctx context.Context, spec engine.RoundSpec) (engine.RoundResult, error) {
	shared := engine.SharedSeed(spec.Seed, spec.Trial)
	accept, rs, err := b.sess.runRound(ctx, shared)
	if err != nil {
		return engine.RoundResult{}, err
	}
	return engine.RoundResult{
		Verdict:    accept,
		Votes:      rs.Votes,
		Stragglers: rs.Stragglers,
		Messages:   rs.Votes,
		Samples:    rs.Votes * b.q,
		Wall:       rs.Wall,
	}, nil
}

// RunManyStats runs a multi-round session end to end: one connection per
// node for all rounds, one verdict and one RoundStats per round. The
// majority of the verdicts is the amplified decision (see core.Amplify).
// With ClusterConfig.MinVotes set, node failures injected by faults are
// tolerated down to the quorum; node-side connect retries are summed into
// the first round's RoundStats.Retries. The round loop is the unified
// engine driver over a single-worker session backend: round seeds derive
// from (base seed, round) exactly as every other backend's do, so a
// session's verdict sequence reproduces the in-process SMP backend's.
func (c *Cluster) RunManyStats(ctx context.Context, sampler dist.Sampler, rng *rand.Rand, rounds int) ([]bool, []RoundStats, error) {
	if sampler == nil {
		return nil, nil, fmt.Errorf("network: nil sampler")
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("network: nil rng")
	}
	if rounds < 1 {
		return nil, nil, fmt.Errorf("network: session with %d rounds", rounds)
	}
	if c.topo.enabled() {
		return c.runShardedMany(ctx, sampler, rng, rounds)
	}
	server, err := c.newServer()
	if err != nil {
		return nil, nil, err
	}
	listener, err := c.tr.Listen()
	if err != nil {
		return nil, nil, fmt.Errorf("network: listen: %w", err)
	}
	defer func() { _ = listener.Close() }()

	// In strict mode a failed node dooms the session, so its goroutine
	// cancels runCtx to unblock a referee still waiting in accept.
	runCtx, cancelSession := context.WithCancel(ctx)
	defer cancelSession()

	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-runCtx.Done():
			_ = listener.Close()
		case <-watchdogDone:
		}
	}()

	baseSeed := rng.Uint64()

	// Construct every node before spawning any, so a construction error
	// cannot leave already-spawned goroutines running against the live
	// listener.
	nodes, err := c.buildNodes(sampler)
	if err != nil {
		return nil, nil, err
	}

	type nodeResult struct {
		verdicts []bool
		retries  int
		err      error
	}
	results := make(chan nodeResult, c.k)
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(node *PlayerNode) {
			defer wg.Done()
			v, retries, err := node.RunSessionStats(c.tr, listener.Addr())
			if err != nil && !c.tolerant() {
				cancelSession()
			}
			results <- nodeResult{verdicts: v, retries: retries, err: err}
		}(nodes[i])
	}

	verdicts, stats, refErr := c.runSessionEngine(runCtx, server, listener, baseSeed, rounds)

	nodesDone := make(chan struct{})
	//lint:ignore dut/ctxprop wg.Wait has no cancellation hook; the goroutine only closes nodesDone, and the select below honors ctx
	go func() {
		wg.Wait()
		close(nodesDone)
	}()
	select {
	case <-nodesDone:
	case <-ctx.Done():
		if refErr != nil {
			return nil, nil, refErr
		}
		return nil, nil, ctx.Err()
	}
	close(results)
	var nodeErr error
	retries := 0
	for r := range results {
		retries += r.retries
		if r.err != nil {
			if c.tolerant() {
				continue // the referee already accounted for this straggler
			}
			if nodeErr == nil {
				nodeErr = r.err
			}
			continue
		}
		if refErr != nil {
			continue
		}
		if len(r.verdicts) != len(verdicts) {
			return nil, nil, fmt.Errorf("network: node saw %d verdicts, referee issued %d", len(r.verdicts), len(verdicts))
		}
		for i := range r.verdicts {
			if r.verdicts[i] != verdicts[i] {
				return nil, nil, fmt.Errorf("network: node verdict %d disagrees with referee", i)
			}
		}
	}
	// A strict-mode node failure is the root cause; the referee error it
	// provokes (cancelled accept, closed connections) is only a symptom.
	if nodeErr != nil {
		return nil, nil, nodeErr
	}
	if refErr != nil {
		return nil, nil, refErr
	}
	if len(stats) > 0 {
		stats[0].Retries = retries
	}
	return verdicts, stats, nil
}

// runSessionEngine drives the referee side of a session through the
// engine's trial driver and maps the results back to the legacy
// ([]bool, []RoundStats) shape.
func (c *Cluster) runSessionEngine(ctx context.Context, server *RefereeServer, l net.Listener, baseSeed uint64, rounds int) ([]bool, []RoundStats, error) {
	sess, err := server.startSession(ctx, l)
	if err != nil {
		return nil, nil, err
	}
	defer sess.close()

	backend := &sessionBackend{sess: sess, k: c.k, q: c.q}
	// The nodes own the samplers in a networked session; the source only
	// satisfies the driver's contract.
	src := func(int, *rand.Rand) (dist.Sampler, error) { return dist.NopSampler{}, nil }
	results, err := engine.Run(ctx, backend, src, rounds, engine.Options{Workers: 1, Seed: baseSeed})
	if err != nil {
		return nil, nil, err
	}
	if err := sess.finish(); err != nil {
		return nil, nil, err
	}
	verdicts := make([]bool, len(results))
	stats := make([]RoundStats, len(results))
	for i, r := range results {
		verdicts[i] = r.Verdict
		stats[i] = RoundStats{
			Round:      r.Trial,
			Votes:      r.Votes,
			Stragglers: r.Stragglers,
			Wall:       r.Wall,
			Verdict:    r.Verdict,
		}
	}
	return verdicts, stats, nil
}

// runShardedMany is RunManyStats over the two-tier referee tree: the
// batch session owns the whole topology (aggregators, nodes, root
// slots), and each round runs as a wire batch of one trial so the
// round seeds — engine.SharedSeed(baseSeed, round) — match the flat
// session's exactly. Connect retries (nodes and aggregators) land on
// the first round's stats, like the flat path's.
func (c *Cluster) runShardedMany(ctx context.Context, sampler dist.Sampler, rng *rand.Rand, rounds int) ([]bool, []RoundStats, error) {
	baseSeed := rng.Uint64()
	bs, err := newBatchSession(ctx, c)
	if err != nil {
		return nil, nil, err
	}
	specs := make([]engine.RoundSpec, rounds)
	for i := range specs {
		specs[i] = engine.RoundSpec{Trial: i, Seed: baseSeed, Sampler: sampler}
	}
	out := make([]engine.RoundResult, rounds)
	runErr := bs.runChunk(ctx, specs, 1, out)
	closeErr := bs.Close()
	if runErr != nil {
		return nil, nil, runErr
	}
	if closeErr != nil {
		return nil, nil, closeErr
	}
	verdicts := make([]bool, rounds)
	stats := make([]RoundStats, rounds)
	for i, r := range out {
		verdicts[i] = r.Verdict
		stats[i] = RoundStats{
			Round:      i,
			Votes:      r.Votes,
			Stragglers: r.Stragglers,
			Retries:    r.Retries,
			Wall:       r.Wall,
			Verdict:    r.Verdict,
		}
	}
	return verdicts, stats, nil
}

// RunMany is RunManyStats without the statistics.
func (c *Cluster) RunMany(ctx context.Context, sampler dist.Sampler, rng *rand.Rand, rounds int) ([]bool, error) {
	verdicts, _, err := c.RunManyStats(ctx, sampler, rng, rounds)
	return verdicts, err
}

// MajorityVerdict reduces a session's verdicts to the amplified decision.
func MajorityVerdict(verdicts []bool) (bool, error) {
	if len(verdicts) == 0 {
		return false, fmt.Errorf("network: majority of zero verdicts")
	}
	accepts := 0
	for _, v := range verdicts {
		if v {
			accepts++
		}
	}
	return 2*accepts > len(verdicts), nil
}
