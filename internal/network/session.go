package network

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// This file implements multi-round sessions: the referee keeps the k
// player connections open and runs the ROUND/VOTE/VERDICT exchange
// repeatedly, closing with FINISH. Sessions amortize connection setup over
// amplification rounds (see core.Amplify for the statistics side) — the
// shape a deployed alarm network actually has, where sensors hold a
// long-lived connection and get polled periodically. In quorum mode a
// slot that dies mid-session (crash, timeout, protocol violation) is
// excluded from later rounds and counted as a straggler in each round's
// RoundStats instead of aborting the session.

// RunSessionStats accepts player connections and runs one
// ROUND/VOTE/VERDICT exchange per seed, then broadcasts FINISH. It
// returns the per-round verdicts and per-round statistics. Connections
// are closed before returning; the listener stays open.
func (s *RefereeServer) RunSessionStats(ctx context.Context, l net.Listener, seeds []uint64) ([]bool, []RoundStats, error) {
	if l == nil {
		return nil, nil, fmt.Errorf("network: nil listener")
	}
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("network: session with zero rounds")
	}
	tr := &connTracker{}
	defer tr.closeAll()
	stop := tr.watch(ctx)
	defer stop()

	start := time.Now()
	slots, err := s.acceptPlayers(ctx, l, tr)
	if err != nil {
		return nil, nil, err
	}

	verdicts := make([]bool, 0, len(seeds))
	allStats := make([]RoundStats, 0, len(seeds))
	votes := make([]core.Message, s.k)
	got := make([]bool, s.k)
	for round, seed := range seeds {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		roundStart := time.Now()
		if round == 0 {
			roundStart = start // charge the accept phase to the first round
		}
		if err := s.gatherVotes(seed, slots, votes, got); err != nil {
			return nil, nil, err
		}
		accept, received, err := s.decideVotes(votes, got)
		stats := RoundStats{
			Round:      round,
			Votes:      received,
			Stragglers: s.k - received,
			Wall:       time.Since(roundStart),
			Verdict:    accept,
		}
		if err != nil {
			return nil, nil, err
		}
		if err := s.broadcastVerdict(slots, accept); err != nil {
			return nil, nil, err
		}
		stats.Wall = time.Since(roundStart)
		verdicts = append(verdicts, accept)
		allStats = append(allStats, stats)
	}
	for _, sl := range slots {
		if sl.dead {
			continue
		}
		setDeadline(sl.conn, s.timeout)
		if err := WriteFinish(sl.conn); err != nil {
			if s.strict() {
				return nil, nil, fmt.Errorf("network: finish to player %d: %w", sl.player, err)
			}
			sl.dead = true
			_ = sl.conn.Close()
		}
	}
	return verdicts, allStats, nil
}

// RunSession is RunSessionStats without the statistics, kept for callers
// that only need the verdicts.
func (s *RefereeServer) RunSession(ctx context.Context, l net.Listener, seeds []uint64) ([]bool, error) {
	verdicts, _, err := s.RunSessionStats(ctx, l, seeds)
	return verdicts, err
}

// RunSessionStats participates in a multi-round session: the node
// connects (with retry-with-backoff on dial and HELLO), answers every
// ROUND with a fresh sample batch and VOTE, records each VERDICT, and
// exits on FINISH. It returns the verdicts seen and the number of
// connect retries spent.
func (p *PlayerNode) RunSessionStats(tr Transport, addr net.Addr, rng *rand.Rand) ([]bool, int, error) {
	if tr == nil {
		return nil, 0, fmt.Errorf("network: nil transport")
	}
	if rng == nil {
		return nil, 0, fmt.Errorf("network: nil rng")
	}
	conn, retries, err := p.connect(tr, addr)
	if err != nil {
		return nil, retries, err
	}
	defer func() { _ = conn.Close() }()

	var verdicts []bool
	for {
		// Referee frames can lag a full referee phase behind — the quorum
		// accept phase before the first ROUND, a slow peer's vote before a
		// VERDICT — so reads get a two-timeout budget.
		setDeadline(conn, 2*p.timeout)
		t, msg, err := ReadFrame(conn)
		if err != nil {
			return nil, retries, fmt.Errorf("network: node %d read: %w", p.id, err)
		}
		switch m := msg.(type) {
		case Round:
			samples := dist.SampleN(p.sampler, p.q, rng)
			vote, err := p.rule.Message(int(p.id), samples, m.Seed, rng)
			if err != nil {
				return nil, retries, fmt.Errorf("network: node %d rule: %w", p.id, err)
			}
			if err := WriteVote(conn, Vote{Player: p.id, Message: uint64(vote)}); err != nil {
				return nil, retries, fmt.Errorf("network: node %d vote: %w", p.id, err)
			}
		case Verdict:
			verdicts = append(verdicts, m.Accept)
		case Finish:
			return verdicts, retries, nil
		default:
			return nil, retries, fmt.Errorf("network: node %d got unexpected %v mid-session", p.id, t)
		}
	}
}

// RunSession is RunSessionStats without the retry count.
func (p *PlayerNode) RunSession(tr Transport, addr net.Addr, rng *rand.Rand) ([]bool, error) {
	verdicts, _, err := p.RunSessionStats(tr, addr, rng)
	return verdicts, err
}

// RunManyStats runs a multi-round session end to end: one connection per
// node for all rounds, one verdict and one RoundStats per round. The
// majority of the verdicts is the amplified decision (see core.Amplify).
// With ClusterConfig.MinVotes set, node failures injected by faults are
// tolerated down to the quorum; node-side connect retries are summed into
// the first round's RoundStats.Retries.
func (c *Cluster) RunManyStats(ctx context.Context, sampler dist.Sampler, rng *rand.Rand, rounds int) ([]bool, []RoundStats, error) {
	if sampler == nil {
		return nil, nil, fmt.Errorf("network: nil sampler")
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("network: nil rng")
	}
	if rounds < 1 {
		return nil, nil, fmt.Errorf("network: session with %d rounds", rounds)
	}
	server, err := c.newServer()
	if err != nil {
		return nil, nil, err
	}
	listener, err := c.tr.Listen()
	if err != nil {
		return nil, nil, fmt.Errorf("network: listen: %w", err)
	}
	defer func() { _ = listener.Close() }()

	// In strict mode a failed node dooms the session, so its goroutine
	// cancels runCtx to unblock a referee still waiting in accept.
	runCtx, cancelSession := context.WithCancel(ctx)
	defer cancelSession()

	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-runCtx.Done():
			_ = listener.Close()
		case <-watchdogDone:
		}
	}()

	seeds := make([]uint64, rounds)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}

	// Construct every node before spawning any, so a construction error
	// cannot leave already-spawned goroutines running against the live
	// listener.
	nodes, rngs, err := c.buildNodes(sampler, rng)
	if err != nil {
		return nil, nil, err
	}

	type nodeResult struct {
		verdicts []bool
		retries  int
		err      error
	}
	results := make(chan nodeResult, c.k)
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(node *PlayerNode, nodeRng *rand.Rand) {
			defer wg.Done()
			v, retries, err := node.RunSessionStats(c.tr, listener.Addr(), nodeRng)
			if err != nil && !c.tolerant() {
				cancelSession()
			}
			results <- nodeResult{verdicts: v, retries: retries, err: err}
		}(nodes[i], rngs[i])
	}

	verdicts, stats, refErr := server.RunSessionStats(runCtx, listener, seeds)

	nodesDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(nodesDone)
	}()
	select {
	case <-nodesDone:
	case <-ctx.Done():
		if refErr != nil {
			return nil, nil, refErr
		}
		return nil, nil, ctx.Err()
	}
	close(results)
	var nodeErr error
	retries := 0
	for r := range results {
		retries += r.retries
		if r.err != nil {
			if c.tolerant() {
				continue // the referee already accounted for this straggler
			}
			if nodeErr == nil {
				nodeErr = r.err
			}
			continue
		}
		if refErr != nil {
			continue
		}
		if len(r.verdicts) != len(verdicts) {
			return nil, nil, fmt.Errorf("network: node saw %d verdicts, referee issued %d", len(r.verdicts), len(verdicts))
		}
		for i := range r.verdicts {
			if r.verdicts[i] != verdicts[i] {
				return nil, nil, fmt.Errorf("network: node verdict %d disagrees with referee", i)
			}
		}
	}
	// A strict-mode node failure is the root cause; the referee error it
	// provokes (cancelled accept, closed connections) is only a symptom.
	if nodeErr != nil {
		return nil, nil, nodeErr
	}
	if refErr != nil {
		return nil, nil, refErr
	}
	if len(stats) > 0 {
		stats[0].Retries = retries
	}
	return verdicts, stats, nil
}

// RunMany is RunManyStats without the statistics.
func (c *Cluster) RunMany(ctx context.Context, sampler dist.Sampler, rng *rand.Rand, rounds int) ([]bool, error) {
	verdicts, _, err := c.RunManyStats(ctx, sampler, rng, rounds)
	return verdicts, err
}

// MajorityVerdict reduces a session's verdicts to the amplified decision.
func MajorityVerdict(verdicts []bool) (bool, error) {
	if len(verdicts) == 0 {
		return false, fmt.Errorf("network: majority of zero verdicts")
	}
	accepts := 0
	for _, v := range verdicts {
		if v {
			accepts++
		}
	}
	return 2*accepts > len(verdicts), nil
}
