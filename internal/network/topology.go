package network

import (
	"fmt"
	"sort"

	"github.com/distributed-uniformity/dut/internal/engine"
)

// Topology describes the shape of the referee tree. The zero value is
// the flat star every prior protocol version speaks: all players dial
// the root referee directly. Shards > 1 inserts one tier of L1
// aggregators between the players and the root; each aggregator owns a
// fixed shard of players computed by Partition, so player->shard
// routing is a pure function of (k, Shards, Weights, Seed) that every
// process can evaluate independently — there is no membership
// negotiation on the wire beyond the root checking AGG_HELLO against
// the same function.
type Topology struct {
	// Shards is the number of L1 aggregators; 0 and 1 both mean flat.
	Shards int
	// Weights are relative aggregator capacities (heterogeneous
	// machines get proportionally larger shards). Nil means uniform.
	Weights []int
	// Seed, when non-zero, shuffles players across shards with the
	// deterministic engine RNG before dealing quota-sized chunks, so
	// shard membership is spread instead of contiguous. Zero keeps
	// contiguous ranges, which is the friendliest layout to read in
	// tests and traces.
	Seed uint64
}

// enabled reports whether the tree has an aggregator tier at all.
// Shards <= 1 keeps every code path byte-identical to the flat star.
func (t Topology) enabled() bool { return t.Shards > 1 }

// validate checks the topology against the player count.
func (t Topology) validate(k int) error {
	if t.Shards < 0 {
		return fmt.Errorf("network: negative shard count %d", t.Shards)
	}
	if t.Shards > k {
		return fmt.Errorf("network: %d shards for %d players; every shard needs at least one player", t.Shards, k)
	}
	if t.Shards > MaxShardPlayers {
		return fmt.Errorf("network: %d shards exceeds limit %d", t.Shards, MaxShardPlayers)
	}
	if t.Weights != nil {
		if len(t.Weights) != t.Shards {
			return fmt.Errorf("network: %d aggregator weights for %d shards", len(t.Weights), t.Shards)
		}
		for i, w := range t.Weights {
			if w < 1 {
				return fmt.Errorf("network: aggregator weight %d for shard %d, want >= 1", w, i)
			}
		}
	}
	return nil
}

// quotas apportions k players over the shards: one player per shard as
// a floor (an empty shard is never useful), then the remaining k-s by
// largest-remainder over the weights, ties broken toward the lower
// shard index. The result is deterministic and sums to exactly k.
func (t Topology) quotas(k int) []int {
	s := t.Shards
	q := make([]int, s)
	for i := range q {
		q[i] = 1
	}
	rest := k - s
	if rest == 0 {
		return q
	}
	totalW := 0
	weight := func(i int) int {
		if t.Weights == nil {
			return 1
		}
		return t.Weights[i]
	}
	for i := 0; i < s; i++ {
		totalW += weight(i)
	}
	// Integer largest-remainder: floor share rest*w/W, then hand the
	// leftover seats to the largest remainders (rest*w mod W), lower
	// index first on ties.
	type frac struct{ rem, idx int }
	fracs := make([]frac, s)
	assigned := 0
	for i := 0; i < s; i++ {
		share := rest * weight(i) / totalW
		q[i] += share
		assigned += share
		fracs[i] = frac{rem: rest * weight(i) % totalW, idx: i}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for i := 0; i < rest-assigned; i++ {
		q[fracs[i].idx]++
	}
	return q
}

// Partition assigns the k players to shards and returns each shard's
// member ids in ascending order. Every process in the tree — root,
// aggregators, players, fault injectors — computes the same partition
// from the same Topology, which is what lets the root reject an
// AGG_HELLO whose membership disagrees with the router.
func (t Topology) Partition(k int) [][]uint32 {
	q := t.quotas(k)
	order := make([]uint32, k)
	for i := range order {
		order[i] = uint32(i)
	}
	if t.Seed != 0 {
		rng := engine.NodeRNG(t.Seed, 0)
		rng.Shuffle(k, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	shards := make([][]uint32, t.Shards)
	off := 0
	for i, n := range q {
		members := make([]uint32, n)
		copy(members, order[off:off+n])
		off += n
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		shards[i] = members
	}
	return shards
}

// shardOf inverts Partition for a single player: the shard index that
// owns the player. Nodes use it to pick which aggregator to dial.
func (t Topology) shardOf(shards [][]uint32, player uint32) int {
	for i, members := range shards {
		j := sort.Search(len(members), func(n int) bool { return members[n] >= player })
		if j < len(members) && members[j] == player {
			return i
		}
	}
	return -1
}
