package network

import (
	"context"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
)

func andReferee() core.BitReferee {
	return core.BitReferee{Rule: core.ANDRule{}}
}

func TestNewFaultTransportValidation(t *testing.T) {
	if _, err := NewFaultTransport(nil, FaultConfig{}); err == nil {
		t.Error("nil inner transport accepted")
	}
	bad := []FaultPlan{
		{DropDials: -1},
		{Delay: -time.Second},
		{CorruptFrame: -1},
		{CrashAtRound: -2},
	}
	for i, plan := range bad {
		cfg := FaultConfig{Plans: map[uint32]FaultPlan{0: plan}}
		if _, err := NewFaultTransport(NewMemTransport(), cfg); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestFaultTransportDropsDials(t *testing.T) {
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Plans: map[uint32]FaultPlan{3: {DropDials: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ft.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()
	// Player 3's first two dials fail, the third succeeds.
	for i := 0; i < 2; i++ {
		if _, err := ft.DialPlayer(l.Addr(), 3); err == nil {
			t.Fatalf("dial %d of player 3 succeeded, want drop", i+1)
		}
	}
	c, err := ft.DialPlayer(l.Addr(), 3)
	if err != nil {
		t.Fatalf("dial 3 of player 3: %v", err)
	}
	_ = c.Close()
	// Unplanned players are never faulted.
	c, err = ft.DialPlayer(l.Addr(), 7)
	if err != nil {
		t.Fatalf("unplanned player dial: %v", err)
	}
	_ = c.Close()
	if got := ft.Stats().DialsDropped; got != 2 {
		t.Errorf("DialsDropped = %d, want 2", got)
	}
}

func TestFaultTransportCorruptsChosenFrame(t *testing.T) {
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Seed:  42,
		Plans: map[uint32]FaultPlan{0: {CorruptFrame: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ft.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	type read struct {
		hello Hello
		vote  Vote
		err   error
	}
	got := make(chan read, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			got <- read{err: err}
			return
		}
		defer func() { _ = conn.Close() }()
		hello, err := expectFrame[Hello](conn, FrameHello)
		if err != nil {
			got <- read{err: err}
			return
		}
		vote, err := expectFrame[Vote](conn, FrameVote)
		got <- read{hello: hello, vote: vote, err: err}
	}()
	conn, err := ft.DialPlayer(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := WriteHello(conn, Hello{Player: 0, Bits: 1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteVote(conn, Vote{Player: 0, Message: 1}); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("referee side: %v", r.err)
	}
	// Frame 1 (HELLO) must arrive intact; frame 2 (VOTE) must have its
	// last payload byte corrupted with the high bit set.
	if r.hello != (Hello{Player: 0, Bits: 1}) {
		t.Errorf("hello corrupted: %+v", r.hello)
	}
	if r.vote.Message&0x80 == 0 || r.vote.Message == 1 {
		t.Errorf("vote message %#x, want high bit set by corruption", r.vote.Message)
	}
	if got := ft.Stats().FramesCorrupted; got != 1 {
		t.Errorf("FramesCorrupted = %d, want 1", got)
	}
}

func TestFaultTransportCrashesAtRound(t *testing.T) {
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Plans: map[uint32]FaultPlan{0: {CrashAtRound: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ft.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = conn.Close() }()
		if _, err := expectFrame[Hello](conn, FrameHello); err != nil {
			done <- err
			return
		}
		if _, err := expectFrame[Vote](conn, FrameVote); err != nil {
			done <- err
			return
		}
		done <- nil
	}()
	conn, err := ft.DialPlayer(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := WriteHello(conn, Hello{Player: 0, Bits: 1}); err != nil {
		t.Fatal(err)
	}
	// Round 1's vote goes through...
	if err := WriteVote(conn, Vote{Player: 0, Message: 1}); err != nil {
		t.Fatalf("round-1 vote: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("referee side: %v", err)
	}
	// ...round 2's vote crashes the connection.
	if err := WriteVote(conn, Vote{Player: 0, Message: 1}); err == nil {
		t.Error("round-2 vote succeeded, want crash")
	}
	if got := ft.Stats().Crashes; got != 1 {
		t.Errorf("Crashes = %d, want 1", got)
	}
}

func TestFaultTransportDeterministicCorruption(t *testing.T) {
	// Two transports with the same seed corrupt identically.
	messages := make([]uint64, 0, 2)
	for run := 0; run < 2; run++ {
		ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
			Seed:  7,
			Plans: map[uint32]FaultPlan{0: {CorruptFrame: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := ft.Listen()
		if err != nil {
			t.Fatal(err)
		}
		got := make(chan Vote, 1)
		go func() {
			conn, err := l.Accept()
			if err != nil {
				close(got)
				return
			}
			defer func() { _ = conn.Close() }()
			v, err := expectFrame[Vote](conn, FrameVote)
			if err != nil {
				close(got)
				return
			}
			got <- v
		}()
		conn, err := ft.DialPlayer(l.Addr(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteVote(conn, Vote{Player: 0, Message: 0}); err != nil {
			t.Fatal(err)
		}
		v, ok := <-got
		if !ok {
			t.Fatal("referee side failed")
		}
		messages = append(messages, v.Message)
		_ = conn.Close()
		_ = l.Close()
	}
	if messages[0] != messages[1] {
		t.Errorf("same seed corrupted differently: %#x vs %#x", messages[0], messages[1])
	}
	if messages[0] == 0 {
		t.Error("corruption did not change the message")
	}
}

func TestNodeRetriesDroppedDials(t *testing.T) {
	// A node whose first two dials are dropped connects on the third
	// attempt and completes a strict round.
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Plans: map[uint32]FaultPlan{0: {DropDials: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K: 2, Q: 0, Rule: acceptAllRule(),
		Referee:   andReferee(),
		Transport: ft,
		Timeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	accept, stats, err := c.RunStats(context.Background(), uniformSampler(t, 4), testRand(21))
	if err != nil {
		t.Fatal(err)
	}
	if !accept {
		t.Error("accept-all cluster rejected")
	}
	if stats.Retries != 2 {
		t.Errorf("Retries = %d, want 2", stats.Retries)
	}
	if stats.Votes != 2 || stats.Stragglers != 0 {
		t.Errorf("stats = %+v, want 2 votes, 0 stragglers", stats)
	}
}

func TestNodeRetryBudgetExhausted(t *testing.T) {
	// More drops than the retry budget: in strict mode the round fails.
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{
		Plans: map[uint32]FaultPlan{0: {DropDials: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K: 1, Q: 0, Rule: acceptAllRule(),
		Referee:   andReferee(),
		Transport: ft,
		Timeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(uniformSampler(t, 4), testRand(22)); err == nil {
		t.Error("unreachable referee reported success")
	}
}
