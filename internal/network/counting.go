package network

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// This file is the observability layer for the fan-out claims: a
// Transport decorator that counts every frame crossing each referee
// tier's accepted connections. It is what pins "the root's downstream
// work is O(aggregators), not O(players)" as a test instead of a
// benchmark anecdote, and what `dut netdemo` prints its per-tier frame
// counts from.

// Tier identifies which referee tier accepted a counted connection.
type Tier int

// The two tiers of the referee tree. On a flat star every connection is
// accepted by the root listener, so the aggregator tier stays zero.
const (
	TierRoot Tier = iota
	TierAggregator
	numTiers
)

// frameKindLimit bounds the tally arrays: every FrameType the wire
// writers can emit is below it. The scanner only sees streams our own
// writers produced, so anything at or above the limit is ignored.
const frameKindLimit = int(FrameAggVerdict) + 1

// TierCounts is a snapshot of one tier's frame traffic, keyed by frame
// type. Down counts frames the tier's listeners wrote to their dialers
// (root -> aggregator, aggregator -> player); Up counts frames they
// read (aggregator -> root, player -> aggregator).
type TierCounts struct {
	Down map[FrameType]uint64
	Up   map[FrameType]uint64
}

// DownTotal is the total number of frames the tier wrote downstream.
// Totals walk the frame-type range in order rather than ranging over
// the map, keeping every traversal here deterministic.
func (c TierCounts) DownTotal() uint64 {
	var n uint64
	for k := 0; k < frameKindLimit; k++ {
		n += c.Down[FrameType(k)]
	}
	return n
}

// UpTotal is the total number of frames the tier read from below.
func (c TierCounts) UpTotal() uint64 {
	var n uint64
	for k := 0; k < frameKindLimit; k++ {
		n += c.Up[FrameType(k)]
	}
	return n
}

// FormatFrameCounts renders one direction's tally in frame-type order,
// e.g. "7 frames (ROUND_BATCH:3 VOTE_BATCH:4)". The walk is over the
// numeric frame-type range, so the rendering is deterministic no matter
// how the map iterates; an empty tally renders as "0 frames".
func FormatFrameCounts(m map[FrameType]uint64) string {
	var total uint64
	var b strings.Builder
	for k := 0; k < frameKindLimit; k++ {
		v := m[FrameType(k)]
		if v == 0 {
			continue
		}
		total += v
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v:%d", FrameType(k), v)
	}
	if b.Len() == 0 {
		return "0 frames"
	}
	return fmt.Sprintf("%d frames (%s)", total, b.String())
}

// CountingTransport wraps any Transport and tallies, per referee tier,
// the frames flowing through every connection its listeners accept.
// Frames are recognized by parsing the 8-byte wire header out of the
// byte stream, so coalesced writes (writeCoalesced flushing a whole
// window) still count one tally per frame, not per syscall.
//
// Tier attribution uses creation order: the first listener is the
// root's (newBatchSession and startSession both listen before
// startSharded builds the aggregator tier), every later listener an
// aggregator's. That holds for a single engine worker — the netdemo and
// fan-out tests run with Workers 1 — and for every direct RunMany*
// session; a multi-worker engine run would interleave per-worker root
// listeners into the aggregator tier, so don't count across workers.
//
// The dialing side passes through unwrapped (PlayerDialer and
// AggregatorDialer included), so a CountingTransport can wrap a
// FaultTransport without disturbing its per-player plans.
type CountingTransport struct {
	inner Transport

	mu        sync.Mutex
	listeners int
	down      [numTiers][frameKindLimit]uint64
	up        [numTiers][frameKindLimit]uint64
}

// Verify interface compliance.
var (
	_ Transport        = (*CountingTransport)(nil)
	_ PlayerDialer     = (*CountingTransport)(nil)
	_ AggregatorDialer = (*CountingTransport)(nil)
)

// NewCountingTransport decorates inner with per-tier frame counting.
func NewCountingTransport(inner Transport) (*CountingTransport, error) {
	if inner == nil {
		return nil, fmt.Errorf("network: counting transport around nil transport")
	}
	return &CountingTransport{inner: inner}, nil
}

// Listen implements Transport: the listener is wrapped so every
// accepted connection is counted under the listener's tier.
func (t *CountingTransport) Listen() (net.Listener, error) {
	l, err := t.inner.Listen()
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	tier := TierAggregator
	if t.listeners == 0 {
		tier = TierRoot
	}
	t.listeners++
	t.mu.Unlock()
	return &countingListener{inner: l, tr: t, tier: tier}, nil
}

// Dial implements Transport by delegating: only the accepting side is
// counted, so every frame is tallied exactly once.
func (t *CountingTransport) Dial(addr net.Addr) (net.Conn, error) { return t.inner.Dial(addr) }

// DialPlayer implements PlayerDialer by delegating to the inner
// transport's per-player path when it has one.
func (t *CountingTransport) DialPlayer(addr net.Addr, player uint32) (net.Conn, error) {
	if pd, ok := t.inner.(PlayerDialer); ok {
		return pd.DialPlayer(addr, player)
	}
	return t.inner.Dial(addr)
}

// DialAggregator implements AggregatorDialer by delegating to the inner
// transport's per-aggregator path when it has one.
func (t *CountingTransport) DialAggregator(addr net.Addr, agg uint32) (net.Conn, error) {
	if ad, ok := t.inner.(AggregatorDialer); ok {
		return ad.DialAggregator(addr, agg)
	}
	return t.inner.Dial(addr)
}

// Snapshot copies the current per-tier tallies.
func (t *CountingTransport) Snapshot() (root, agg TierCounts) {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := func(tier Tier) TierCounts {
		c := TierCounts{Down: make(map[FrameType]uint64), Up: make(map[FrameType]uint64)}
		for k, v := range t.down[tier] {
			if v > 0 {
				c.Down[FrameType(k)] = v
			}
		}
		for k, v := range t.up[tier] {
			if v > 0 {
				c.Up[FrameType(k)] = v
			}
		}
		return c
	}
	return snap(TierRoot), snap(TierAggregator)
}

func (t *CountingTransport) record(tier Tier, down bool, kind FrameType) {
	if int(kind) >= frameKindLimit {
		return
	}
	t.mu.Lock()
	if down {
		t.down[tier][kind]++
	} else {
		t.up[tier][kind]++
	}
	t.mu.Unlock()
}

// countingListener wraps one tier's listener; accepted connections
// count their frames under the listener's tier.
type countingListener struct {
	inner net.Listener
	tr    *CountingTransport
	tier  Tier
}

func (l *countingListener) Accept() (net.Conn, error) {
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: conn, tr: l.tr, tier: l.tier}, nil
}

func (l *countingListener) Close() error   { return l.inner.Close() }
func (l *countingListener) Addr() net.Addr { return l.inner.Addr() }

// SetDeadline forwards the accept deadline the quorum-mode referee
// needs; a wrapped listener without deadline support reports it here
// instead of silently hanging the accept phase.
func (l *countingListener) SetDeadline(at time.Time) error {
	if dl, ok := l.inner.(acceptDeadliner); ok {
		return dl.SetDeadline(at)
	}
	return fmt.Errorf("network: listener %T has no accept deadline", l.inner)
}

// countingConn tallies the frames crossing one accepted connection:
// writes are the tier's downstream frames, reads its upstream ones.
// Each direction has its own scanner — the batch session's slot writer
// and gather reader own the two directions concurrently.
type countingConn struct {
	net.Conn
	tr   *CountingTransport
	tier Tier
	wr   frameScanner
	rd   frameScanner
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.wr.feed(p[:n], func(kind FrameType) { c.tr.record(c.tier, true, kind) })
	return n, err
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rd.feed(p[:n], func(kind FrameType) { c.tr.record(c.tier, false, kind) })
	return n, err
}

// frameScanner reassembles wire headers out of an arbitrary byte
// stream: frames may arrive split across reads or coalesced many to a
// write, so it tracks how far into the current header or payload the
// stream is and emits one frame type per completed header.
type frameScanner struct {
	mu   sync.Mutex
	hdr  [headerSize]byte
	have int // header bytes collected
	skip int // payload bytes left to consume
}

func (s *frameScanner) feed(p []byte, emit func(FrameType)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(p) > 0 {
		if s.skip > 0 {
			n := min(s.skip, len(p))
			s.skip -= n
			p = p[n:]
			continue
		}
		n := copy(s.hdr[s.have:], p)
		s.have += n
		p = p[n:]
		if s.have == headerSize {
			emit(FrameType(s.hdr[3]))
			s.skip = int(binary.BigEndian.Uint32(s.hdr[4:8]))
			s.have = 0
		}
	}
}
