package network

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
)

// This file implements the sharded referee tree: with Topology.Shards
// s > 1 the flat star becomes a two-tier tree where each of s L1
// aggregators owns one shard of players, runs the same accept/HELLO and
// batch-gather logic the root runs against its shard, reduces every
// gathered VOTE_BATCH / VOTE_BATCH_R locally, and sends one reduced
// frame per batch upstream. For threshold- and sum-shaped referees the
// reduction is the bit-sliced partial sum itself (AGG_SUM carries the
// per-lane rejection/value counters, which compose across shards by
// lane-wise addition); for opaque referees the aggregator forwards its
// shard's packed planes in one AGG_PLANES frame, and the root scatters
// them back into the per-player delivery table so the per-trial
// decideVotes fallback is reached with exactly the flat referee's
// inputs. Quorum and absentee accounting compose per shard through the
// explicit present-counts every reduced frame carries: the root's
// received count is the sum of shard present-counts, and the shaped
// decide adjusts its threshold for the absentees exactly as
// decideVotes would have (see adjustedThreshold), so verdicts are
// bit-identical to the flat referee for every rule shape, shard count,
// batch size and presence pattern.

// dialAggregator uses per-aggregator dialing when the transport
// supports it, so fault-injecting transports can apply per-aggregator
// plans on the L1 -> root hop.
func dialAggregator(tr Transport, addr net.Addr, agg uint32) (net.Conn, error) {
	if ad, ok := tr.(AggregatorDialer); ok {
		return ad.DialAggregator(addr, agg)
	}
	return tr.Dial(addr)
}

// aggBatch is one pending reduction: the batch id and trial count the
// aggregator's reader observed on a ROUND_BATCH it relayed downstream.
type aggBatch struct {
	id    uint32
	count int
}

// aggBatchQueue is an unbounded FIFO of pending reductions feeding the
// aggregator's reduce loop, mirroring frameQueue's close semantics:
// pushes after close are dropped, pending items still drain.
type aggBatchQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []aggBatch
	closed bool
}

func newAggBatchQueue() *aggBatchQueue {
	q := &aggBatchQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *aggBatchQueue) push(b aggBatch) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, b)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until an item is pending or the queue is closed and empty.
func (q *aggBatchQueue) pop() (aggBatch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return aggBatch{}, false
	}
	b := q.items[0]
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.items = q.items[:0:cap(q.items)]
	}
	return b, true
}

func (q *aggBatchQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// aggSent is one reduction's upstream echo record: the batch id, trial
// count and present count the aggregator reported to the root. The
// reader validates the root's AGG_VERDICT against the matching record
// before relaying, so the root cannot make an aggregator fan out a
// verdict for a batch it never reduced or with accounting that
// disagrees with what the shard actually delivered.
type aggSent struct {
	batch   uint32
	count   uint32
	present uint32
}

// aggregator is one L1 node of the referee tree: it accepts its shard's
// players, relays the root's ROUND_BATCH / FINISH frames downstream,
// reduces each batch's votes into one upstream frame, and re-expands
// each AGG_VERDICT into the VERDICT_BATCH its shard's sessions expect —
// encoded once into reused scratch, then queued to every member. Its
// reader and reducer run as separate goroutines so the next batch's
// relay is never blocked behind the previous batch's gather — the same
// pipelining the flat session gets from its writer queues.
type aggregator struct {
	bs       *batchSession
	id       uint32
	members  []uint32 // ascending player ids, from Topology.Partition
	listener net.Listener

	root  net.Conn
	slots []*batchSlot // by shard position; nil = absent (quorum mode)

	pending    *aggBatchQueue
	readerDone chan struct{}
	done       chan struct{}

	// sent is the FIFO of upstream echo records, pushed by the reducer
	// just before each reduced frame's write and popped by the reader on
	// the matching AGG_VERDICT. The root decides batches in flight order,
	// so FIFO order is the only legal verdict order; sentMu covers the
	// reducer/reader handoff. The backing array settles at the session's
	// window high-water mark, like the frame queues.
	sentMu   sync.Mutex
	sent     []aggSent
	sentHead int

	// Reduce scratch, reused per batch so the hot path stays at zero
	// allocations: deliv holds delivered plane sets by shard position,
	// col the bit-sliced per-word counters, sums the encoded partial
	// sums, mask/fwd the AGG_PLANES membership mask and forwarded
	// planes. enc backs the upstream frame encode, relay the downstream
	// re-encode of root frames.
	deliv [][]uint64
	col   []uint64
	sums  []uint64
	mask  []uint64
	fwd   []uint64
	enc   []byte
	relay []byte
}

func newAggregator(bs *batchSession, id uint32, members []uint32, l net.Listener) *aggregator {
	return &aggregator{
		bs:         bs,
		id:         id,
		members:    members,
		listener:   l,
		pending:    newAggBatchQueue(),
		readerDone: make(chan struct{}),
		done:       make(chan struct{}),
		deliv:      make([][]uint64, len(members)),
		col:        make([]uint64, len(bs.planes)),
		mask:       make([]uint64, aggMaskWords(len(members))),
	}
}

// runAggregator is the aggregator goroutine: member accept, root
// connect, then reader (downstream relay) and reducer (upstream
// reduction) until FINISH or failure. a.done is closed on exit, which
// is what Close waits on.
func (bs *batchSession) runAggregator(ctx context.Context, a *aggregator, rootAddr net.Addr) {
	defer close(a.done)
	if err := a.setup(ctx, rootAddr); err != nil {
		bs.failAgg(err)
		a.closeMembers()
		return
	}
	//lint:ignore dut/ctxprop the reader blocks in deadline-bounded root reads; cancellation reaches it when session teardown closes the root conn and the next read errors out
	go a.readRoot()
	a.reduceLoop()
	<-a.readerDone
	a.closeMembers()
	_ = a.root.Close()
}

// setup runs the aggregator's connect phase: accept the shard's
// players, start their writers, then dial the root and announce the
// shard with AGG_HELLO.
func (a *aggregator) setup(ctx context.Context, rootAddr net.Addr) error {
	slots, present, err := a.acceptMembers(ctx)
	if err != nil {
		return err
	}
	a.slots = slots
	for _, slot := range slots {
		if slot == nil {
			continue
		}
		//lint:ignore dut/ctxprop the writer drains until its frame queue closes (closeMembers always closes it); cancellation reaches it through failSlot closing the conn
		go a.bs.slotWriter(slot)
	}
	return a.connectRoot(rootAddr, present)
}

// acceptMembers accepts the shard's players, mirroring the root's
// acceptPlayers: strict mode blocks until every member registered,
// quorum mode bounds the phase with an accept deadline and takes
// whoever made it (the root checks the global quorum against the
// summed present-counts, so a partial shard is not an error here).
//
//dut:coldpath once-per-session member accept and handshake validation
func (a *aggregator) acceptMembers(ctx context.Context) ([]*batchSlot, uint32, error) {
	s := a.bs.server
	if !s.strict() {
		dl, ok := a.listener.(acceptDeadliner)
		if !ok {
			return nil, 0, fmt.Errorf("network: quorum mode needs a listener with accept deadlines (have %T)", a.listener)
		}
		//lint:ignore dut/nondeterminism net deadlines need an absolute instant; bounds the accept wait, never the verdict
		_ = dl.SetDeadline(time.Now().Add(s.timeout))
		defer func() { _ = dl.SetDeadline(time.Time{}) }()
	}
	slots := make([]*batchSlot, len(a.members))
	var present uint32
	for int(present) < len(a.members) {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		conn, err := a.listener.Accept()
		if err != nil {
			if !s.strict() && errors.Is(err, os.ErrDeadlineExceeded) {
				return slots, present, nil
			}
			return nil, 0, fmt.Errorf("network: aggregator %d accept: %w", a.id, err)
		}
		a.bs.track(conn)
		setDeadline(conn, s.timeout)
		hello, err := expectFrame[Hello](conn, FrameHello)
		if err != nil {
			if s.strict() {
				return nil, 0, fmt.Errorf("network: aggregator %d hello: %w", a.id, err)
			}
			_ = conn.Close()
			continue
		}
		if err := a.validateMember(hello, slots); err != nil {
			if s.strict() {
				return nil, 0, err
			}
			_ = conn.Close()
			continue
		}
		pos := a.position(hello.Player)
		slots[pos] = &batchSlot{
			sl:         &playerSlot{conn: conn, player: hello.Player, bits: hello.Bits},
			q:          newFrameQueue(),
			writerDone: make(chan struct{}),
		}
		present++
	}
	return slots, present, nil
}

// validateMember is validateHello against the shard: the player must be
// one of the aggregator's assigned members, announced once, with the
// pinned message width.
func (a *aggregator) validateMember(h Hello, slots []*batchSlot) error {
	if h.Bits < 1 || h.Bits > 64 {
		return fmt.Errorf("network: player %d announced %d message bits", h.Player, h.Bits)
	}
	if s := a.bs.server; s.bits != 0 && int(h.Bits) != s.bits {
		return fmt.Errorf("network: player %d announced %d-bit messages but the referee's rule decides over %d-bit messages",
			h.Player, h.Bits, s.bits)
	}
	pos := a.position(h.Player)
	if pos < 0 {
		return fmt.Errorf("network: player %d dialed aggregator %d, which does not own it", h.Player, a.id)
	}
	if slots[pos] != nil {
		return fmt.Errorf("network: duplicate player id %d", h.Player)
	}
	return nil
}

// position is the player's index within the shard's ascending member
// list, or -1 if the shard does not own it.
func (a *aggregator) position(player uint32) int {
	j := sort.Search(len(a.members), func(n int) bool { return a.members[n] >= player })
	if j < len(a.members) && a.members[j] == player {
		return j
	}
	return -1
}

// connectRoot dials the root with the node-style retry/backoff policy
// and announces the shard. Retries are accounted like node connect
// retries, onto the next reported trial's stats.
//
//dut:coldpath once-per-session upstream dial with retry/backoff
func (a *aggregator) connectRoot(addr net.Addr, present uint32) error {
	c := a.bs.c
	backoff := c.backoff
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := dialAggregator(c.tr, addr, a.id)
		if err != nil {
			lastErr = fmt.Errorf("network: aggregator %d dial: %w", a.id, err)
			continue
		}
		a.bs.track(conn)
		setDeadline(conn, a.bs.server.timeout)
		hello := AggHello{Agg: a.id, Bits: uint8(a.bs.msgBits), Present: present, Members: a.members}
		if err := WriteAggHello(conn, hello); err != nil {
			_ = conn.Close()
			lastErr = fmt.Errorf("network: aggregator %d hello: %w", a.id, err)
			continue
		}
		a.bs.addRetries(attempt)
		a.root = conn
		return nil
	}
	a.bs.addRetries(c.retries)
	return fmt.Errorf("network: aggregator %d connect failed after %d attempt(s): %w", a.id, c.retries+1, lastErr)
}

// readRoot relays the root's frames downstream. Every relayed
// ROUND_BATCH also queues a reduction descriptor for the reduce loop,
// so relaying batch n+1 never waits on gathering batch n. Verdicts
// arrive as AGG_VERDICT — one frame per batch carrying the packed
// verdicts for the whole tree — and are audited against the oldest
// unanswered reduction before the shard sees a byte of them. The
// pending queue is closed on exit (FINISH or failure), which is what
// ends the reduce loop.
//
//dut:hotpath per-batch downstream relay loop
func (a *aggregator) readRoot() {
	defer close(a.readerDone)
	defer a.pending.close()
	bs := a.bs
	for {
		// A root frame can lag a whole decide phase; budget two timeouts,
		// like every other cross-phase read.
		setReadDeadline(a.root, 2*bs.server.timeout)
		kind, msg, err := ReadFrame(a.root)
		if err != nil {
			a.fail(fmt.Errorf("network: aggregator %d read: %w", a.id, err))
			return
		}
		switch m := msg.(type) {
		case RoundBatch:
			relay, err := AppendRoundBatch(a.relay[:0], m)
			a.relay = relay
			if err != nil {
				a.fail(fmt.Errorf("network: aggregator %d relay: %w", a.id, err))
				return
			}
			a.broadcast(relay)
			a.pending.push(aggBatch{id: m.Batch, count: len(m.Seeds)})
		case AggVerdict:
			if err := a.relayVerdict(m); err != nil {
				a.fail(err)
				return
			}
		case Finish:
			a.relay = AppendFinish(a.relay[:0])
			a.broadcast(a.relay)
			a.closeQueues()
			return
		default:
			a.fail(fmt.Errorf("network: aggregator %d got unexpected %v from the root", a.id, kind))
			return
		}
	}
}

// recordSent pushes one reduction's echo record; the reducer calls it
// immediately before the reduced frame's upstream write, so by the time
// the root can possibly answer, the record the reader will audit
// against is already in the FIFO.
func (a *aggregator) recordSent(r aggSent) {
	a.sentMu.Lock()
	a.sent = append(a.sent, r)
	a.sentMu.Unlock()
}

// takeSent pops the oldest unanswered echo record. The slice compacts
// whenever it fully drains — which happens once per settled window — so
// the backing array stops growing at the window's high-water mark.
func (a *aggregator) takeSent() (aggSent, bool) {
	a.sentMu.Lock()
	defer a.sentMu.Unlock()
	if a.sentHead == len(a.sent) {
		return aggSent{}, false
	}
	r := a.sent[a.sentHead]
	a.sentHead++
	if a.sentHead == len(a.sent) {
		a.sent = a.sent[:0]
		a.sentHead = 0
	}
	return r, true
}

// relayVerdict audits one AGG_VERDICT against the oldest unanswered
// reduction — batch id, trial count and the root's present-count
// accounting for this shard must all echo what the reducer sent
// upstream — then fans the verdicts out: the VERDICT_BATCH bytes are
// built once in the relay scratch and queued to every live member
// (push copies them), so the per-member cost is one enqueue and the
// relay path settles at zero allocations per batch.
//
//dut:hotpath per-batch verdict fan-out
func (a *aggregator) relayVerdict(m AggVerdict) error {
	sent, ok := a.takeSent()
	if !ok {
		return fmt.Errorf("network: aggregator %d got a verdict for batch %d with no reduction awaiting one", a.id, m.Batch)
	}
	if m.Batch != sent.batch {
		return fmt.Errorf("network: aggregator %d got a verdict for batch %d, expected %d", a.id, m.Batch, sent.batch)
	}
	if m.Count != sent.count {
		return fmt.Errorf("network: aggregator %d got %d verdict trials for batch %d, expected %d", a.id, m.Count, m.Batch, sent.count)
	}
	if int(a.id) >= len(m.Present) {
		return fmt.Errorf("network: aggregator %d missing from a %d-shard verdict accounting", a.id, len(m.Present))
	}
	if got := m.Present[a.id]; got != sent.present {
		return fmt.Errorf("network: root credited aggregator %d with %d present players for batch %d, it reported %d",
			a.id, got, m.Batch, sent.present)
	}
	relay, err := AppendVerdictBatch(a.relay[:0], VerdictBatch{Batch: m.Batch, Count: m.Count, Bits: m.Bits})
	a.relay = relay
	if err != nil {
		return fmt.Errorf("network: aggregator %d relay: %w", a.id, err)
	}
	a.broadcast(relay)
	return nil
}

// broadcast queues one encoded frame to every live member.
func (a *aggregator) broadcast(frame []byte) {
	for _, slot := range a.slots {
		if slot == nil || slot.isDead() {
			continue
		}
		slot.q.push(frame)
	}
}

func (a *aggregator) closeQueues() {
	for _, slot := range a.slots {
		if slot == nil {
			continue
		}
		slot.q.close()
	}
}

// reduceLoop drains pending reductions in FIFO order until the reader
// closes the queue.
//
//dut:hotpath per-batch reduce driver
func (a *aggregator) reduceLoop() {
	for {
		b, ok := a.pending.pop()
		if !ok {
			return
		}
		a.runBatch(b)
	}
}

// runBatch gathers one batch from the shard and sends the reduced frame
// upstream: bit-sliced partial sums (AGG_SUM) when the referee is
// threshold- or sum-shaped, the packed planes with a membership mask
// (AGG_PLANES) otherwise. Both encodes reuse the aggregator's scratch,
// so a settled session reduces at zero allocations per batch.
func (a *aggregator) runBatch(b aggBatch) {
	bs := a.bs
	words := batchWords(b.count)
	received := a.gather(b.id, b.count)
	var err error
	if bs.shapeOK || bs.sumOK {
		planes := len(bs.planes)
		need := planes * words
		if cap(a.sums) < need {
			a.sums = make([]uint64, need)
		}
		sums := a.sums[:need]
		if bs.shapeOK {
			reduceThresholdSums(a.deliv, b.count, words, a.col, sums)
		} else {
			reduceValueSums(a.deliv, bs.msgBits, words, a.col, sums)
		}
		a.enc, err = AppendAggSum(a.enc[:0], AggSum{
			Agg: a.id, Batch: b.id, Count: uint32(b.count),
			Bits: uint8(bs.msgBits), Planes: uint8(planes),
			Present: uint32(received), Sums: sums,
		})
	} else {
		clear(a.mask)
		a.fwd = a.fwd[:0]
		stride := bs.msgBits * words
		for pos, d := range a.deliv {
			if d == nil {
				continue
			}
			a.mask[pos/64] |= 1 << (pos % 64)
			a.fwd = append(a.fwd, d[:stride]...)
		}
		a.enc, err = AppendAggPlanes(a.enc[:0], AggPlanes{
			Agg: a.id, Batch: b.id, Count: uint32(b.count), Bits: uint8(bs.msgBits),
			Members: uint32(len(a.members)), Present: uint32(received),
			Mask: a.mask, Planes: a.fwd,
		})
	}
	if err != nil {
		a.fail(fmt.Errorf("network: aggregator %d reduce batch %d: %w", a.id, b.id, err))
		return
	}
	// The echo record must be in the FIFO before the write: the root can
	// answer with the batch's AGG_VERDICT the moment the frame lands.
	a.recordSent(aggSent{batch: b.id, count: uint32(b.count), present: uint32(received)})
	setWriteDeadline(a.root, bs.server.timeout)
	if err := writeCoalesced(a.root, a.enc); err != nil {
		//lint:ignore dut/hotalloc failure path: fail tears the session down, so the error allocation is the last thing this batch does
		a.fail(fmt.Errorf("network: aggregator %d reduced batch %d upstream: %w", a.id, b.id, err))
	}
}

// gather collects one batch's votes from every live member, with
// exactly the root gather's echo checks. Delivered plane sets land in
// a.deliv by shard position (nil = absent); it returns the number of
// valid deliveries.
func (a *aggregator) gather(batchID uint32, count int) int {
	bs := a.bs
	for i := range a.deliv {
		a.deliv[i] = nil
	}
	var wg sync.WaitGroup
	for pos, slot := range a.slots {
		if slot == nil || slot.isDead() {
			continue
		}
		wg.Add(1)
		//lint:ignore dut/hotalloc one reader goroutine per live member per batch, amortized across the batch's trials
		go func(pos int, slot *batchSlot) {
			defer wg.Done()
			conn := slot.sl.conn
			// The vote can lag the node's whole batch of sampling plus a
			// queued verdict write; budget two timeouts.
			setReadDeadline(conn, 2*bs.server.timeout)
			var vb VoteBatchR
			if bs.msgBits == 1 {
				classic, err := expectFrame[VoteBatch](conn, FrameVoteBatch)
				if err != nil {
					a.failMember(slot, fmt.Errorf("network: vote batch from player %d: %w", slot.sl.player, err))
					return
				}
				vb = VoteBatchR{Player: classic.Player, Batch: classic.Batch, Count: classic.Count, Bits: 1, Planes: classic.Bits}
			} else {
				wide, err := expectFrame[VoteBatchR](conn, FrameVoteBatchR)
				if err != nil {
					a.failMember(slot, fmt.Errorf("network: vote batch from player %d: %w", slot.sl.player, err))
					return
				}
				vb = wide
			}
			if vb.Player != slot.sl.player {
				a.failMember(slot, fmt.Errorf("network: vote batch claims player %d on player %d's connection", vb.Player, slot.sl.player))
				return
			}
			if vb.Batch != batchID {
				a.failMember(slot, fmt.Errorf("network: player %d answered batch %d, expected %d", slot.sl.player, vb.Batch, batchID))
				return
			}
			if int(vb.Count) != count {
				a.failMember(slot, fmt.Errorf("network: player %d voted on %d trials of batch %d, expected %d", slot.sl.player, vb.Count, batchID, count))
				return
			}
			if int(vb.Bits) != bs.msgBits {
				a.failMember(slot, fmt.Errorf("network: player %d sent %d-bit votes, the rule uses %d bits", slot.sl.player, vb.Bits, bs.msgBits))
				return
			}
			a.deliv[pos] = vb.Planes
		}(pos, slot)
	}
	wg.Wait()
	received := 0
	for _, d := range a.deliv {
		if d != nil {
			received++
		}
	}
	return received
}

// failMember marks one member slot dead; in strict mode a member
// failure dooms the session, exactly as it would on the flat star.
func (a *aggregator) failMember(slot *batchSlot, err error) {
	a.bs.failSlot(slot, err)
	if a.bs.server.strict() {
		a.bs.failAgg(err)
	}
}

// fail records the aggregator's own failure and closes the upstream
// connection, so the root's gather observes the loss promptly instead
// of waiting out its deadline.
func (a *aggregator) fail(err error) {
	if a.root != nil {
		_ = a.root.Close()
	}
	a.bs.failAgg(err)
}

// closeMembers finishes the shard: queues close (pending frames still
// drain), writers exit, connections close.
func (a *aggregator) closeMembers() {
	a.closeQueues()
	for _, slot := range a.slots {
		if slot == nil {
			continue
		}
		<-slot.writerDone
		_ = slot.sl.conn.Close()
	}
}

// reduceThresholdSums accumulates the shard's per-lane rejection counts
// into bit-sliced counter planes: for each trial word, every present
// member's inverted vote word (1 = rejection) is ripple-carry added
// into col, and the columns land in sums plane-major (sums[p*words+w]
// is bit p of every lane in word w). The inversion is masked on the
// final word so padding lanes stay zero — the flat decide masks its
// padding only at the verdict, but these counters travel the wire,
// where AGG_SUM's validation demands zero padding.
//
//dut:hotpath
func reduceThresholdSums(deliv [][]uint64, count, words int, col, sums []uint64) {
	clear(sums)
	rem := count % 64
	for w := 0; w < words; w++ {
		for i := range col {
			col[i] = 0
		}
		for _, d := range deliv {
			if d == nil {
				continue
			}
			carry := ^d[w]
			if w == words-1 && rem != 0 {
				carry &= 1<<rem - 1
			}
			for i := 0; i < len(col) && carry != 0; i++ {
				next := col[i] & carry
				col[i] ^= carry
				carry = next
			}
		}
		for p := range col {
			sums[p*words+w] = col[p]
		}
	}
}

// reduceValueSums is reduceThresholdSums for r-bit sum-shaped referees:
// message plane b adds 2^b per set lane, so the ripple starts at
// counter plane b. Value planes are wire-validated to have zero
// padding, so no masking is needed.
//
//dut:hotpath
func reduceValueSums(deliv [][]uint64, msgBits, words int, col, sums []uint64) {
	clear(sums)
	for w := 0; w < words; w++ {
		for i := range col {
			col[i] = 0
		}
		for _, d := range deliv {
			if d == nil {
				continue
			}
			for b := 0; b < msgBits; b++ {
				carry := d[b*words+w]
				for i := b; i < len(col) && carry != 0; i++ {
					next := col[i] & carry
					col[i] ^= carry
					carry = next
				}
			}
		}
		for p := range col {
			sums[p*words+w] = col[p]
		}
	}
}

// combineShardSums adds one shard's bit-sliced partial sums into the
// accumulator, lane-wise: a full adder per counter plane per word. It
// reports overflow past the top plane, which legitimate totals cannot
// produce (the planes are sized for all k players), so a true result
// means a hostile or corrupted counter.
//
//dut:hotpath
func combineShardSums(acc, shard []uint64, planes, words int) bool {
	var overflow uint64
	for w := 0; w < words; w++ {
		var carry uint64
		for p := 0; p < planes; p++ {
			i := p*words + w
			a, b := acc[i], shard[i]
			acc[i] = a ^ b ^ carry
			carry = a&b | carry&(a^b)
		}
		overflow |= carry
	}
	return overflow != 0
}

// track registers a connection with the sharded session's tracker, so
// context death force-closes it. Flat sessions have no tracker (their
// session object owns that job).
func (bs *batchSession) track(conn net.Conn) {
	if bs.tracker != nil {
		bs.tracker.track(conn)
	}
}

// failAgg records an aggregator failure; in strict mode it also tears
// the session down, like failNode.
func (bs *batchSession) failAgg(err error) {
	bs.mu.Lock()
	if bs.aggErr == nil {
		bs.aggErr = err
	}
	bs.mu.Unlock()
	if !bs.c.tolerant() {
		bs.cancel()
	}
}

func (bs *batchSession) peekAggErr() error {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.aggErr
}

// sharded reports whether this session runs the two-tier tree.
func (bs *batchSession) sharded() bool { return bs.aggs != nil }

// startSharded builds the aggregator tier: partition the players,
// spawn one aggregator goroutine per shard (each with its own
// listener), point every node at its shard's aggregator, and run the
// root's AGG_HELLO accept phase.
//
//dut:coldpath once-per-session tree construction; shard planning, aggregator spawn and member dialing are amortized across every batch
func (bs *batchSession) startSharded(ctx context.Context, rootListener net.Listener) error {
	c := bs.c
	bs.shards = c.topo.Partition(c.k)
	bs.votes = make([]core.Message, c.k)
	bs.got = make([]bool, c.k)
	bs.tracker = &connTracker{}
	bs.trackStop = bs.tracker.watch(ctx)
	nShards := len(bs.shards)
	bs.shardSums = make([][]uint64, nShards)
	bs.shardPresent = make([]uint32, nShards)
	bs.shardGot = make([]bool, nShards)

	addrByPlayer := make([]net.Addr, c.k)
	bs.aggs = make([]*aggregator, nShards)
	listeners := make([]net.Listener, nShards)
	bs.aggListeners = listeners
	go func() {
		<-ctx.Done()
		for _, l := range listeners {
			if l != nil {
				_ = l.Close()
			}
		}
	}()
	for i, members := range bs.shards {
		l, err := c.tr.Listen()
		if err != nil {
			return fmt.Errorf("network: aggregator %d listen: %w", i, err)
		}
		listeners[i] = l
		bs.aggs[i] = newAggregator(bs, uint32(i), members, l)
		for _, p := range members {
			addrByPlayer[p] = l.Addr()
		}
	}
	for _, a := range bs.aggs {
		go bs.runAggregator(ctx, a, rootListener.Addr())
	}
	for _, node := range bs.nodes {
		bs.nodeWG.Add(1)
		//lint:ignore dut/ctxprop cancel() closes the listeners and tracked conns, which unwinds connect and runSessionConn; a ctx check here would race the same teardown
		go func(node *PlayerNode, addr net.Addr) {
			defer bs.nodeWG.Done()
			conn, retries, err := node.connect(c.tr, addr)
			bs.addRetries(retries)
			if err != nil {
				bs.failNode(err)
				return
			}
			defer func() { _ = conn.Close() }()
			if _, err := node.runSessionConn(conn, false); err != nil {
				bs.failNode(err)
			}
		}(node, addrByPlayer[node.id])
	}
	slots, err := bs.acceptAggregators(ctx, rootListener)
	if err != nil {
		return err
	}
	bs.slots = slots
	for _, slot := range bs.slots {
		//lint:ignore dut/ctxprop the writer drains until its frame queue closes (Close always closes it); cancellation reaches it through failSlot closing the conn
		go bs.slotWriter(slot)
	}
	return nil
}

// acceptAggregators is the root's accept phase on the sharded tree:
// every shard's AGG_HELLO in strict mode, or whoever made it before
// the deadline in quorum mode — where the quorum is checked against
// the summed per-shard present-counts, because one aggregator speaks
// for a whole shard of players. The deadline is two timeouts: a quorum
// aggregator holds its own accept phase open for one timeout waiting
// out stragglers before it dials upstream.
func (bs *batchSession) acceptAggregators(ctx context.Context, l net.Listener) ([]*batchSlot, error) {
	s := bs.server
	nShards := len(bs.shards)
	if !s.strict() {
		dl, ok := l.(acceptDeadliner)
		if !ok {
			return nil, fmt.Errorf("network: quorum mode needs a listener with accept deadlines (have %T)", l)
		}
		//lint:ignore dut/nondeterminism net deadlines need an absolute instant; bounds the accept wait, never the verdict
		_ = dl.SetDeadline(time.Now().Add(2 * s.timeout))
		defer func() { _ = dl.SetDeadline(time.Time{}) }()
	}
	slots := make([]*batchSlot, 0, nShards)
	seen := make([]bool, nShards)
	present := 0
	for len(slots) < nShards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		conn, err := l.Accept()
		if err != nil {
			if !s.strict() && errors.Is(err, os.ErrDeadlineExceeded) {
				if present >= s.minVotes {
					return slots, nil
				}
				return nil, fmt.Errorf("network: quorum not met: %d of %d players connected before the accept deadline, need %d",
					present, s.k, s.minVotes)
			}
			return nil, fmt.Errorf("network: accept: %w", err)
		}
		bs.track(conn)
		setDeadline(conn, s.timeout)
		hello, err := expectFrame[AggHello](conn, FrameAggHello)
		if err != nil {
			if s.strict() {
				return nil, fmt.Errorf("network: aggregator hello: %w", err)
			}
			_ = conn.Close()
			continue
		}
		if err := bs.validateAggHello(hello, seen); err != nil {
			if s.strict() {
				return nil, err
			}
			_ = conn.Close()
			continue
		}
		seen[hello.Agg] = true
		present += int(hello.Present)
		slots = append(slots, &batchSlot{
			sl:         &playerSlot{conn: conn, player: hello.Agg, bits: hello.Bits},
			q:          newFrameQueue(),
			writerDone: make(chan struct{}),
		})
	}
	return slots, nil
}

// validateAggHello checks one aggregator's announcement: a known,
// unduplicated shard id, the pinned message width, and membership that
// agrees exactly with the deterministic router — the root never trusts
// a shard map it did not compute itself.
func (bs *batchSession) validateAggHello(h AggHello, seen []bool) error {
	if int(h.Agg) >= len(bs.shards) {
		return fmt.Errorf("network: aggregator id %d out of range [0, %d)", h.Agg, len(bs.shards))
	}
	if seen[h.Agg] {
		return fmt.Errorf("network: duplicate aggregator id %d", h.Agg)
	}
	if s := bs.server; s.bits != 0 && int(h.Bits) != s.bits {
		return fmt.Errorf("network: aggregator %d announced %d-bit messages but the referee's rule decides over %d-bit messages",
			h.Agg, h.Bits, s.bits)
	}
	want := bs.shards[h.Agg]
	if len(h.Members) != len(want) {
		return fmt.Errorf("network: aggregator %d announced %d members, the router assigns it %d", h.Agg, len(h.Members), len(want))
	}
	for i := range want {
		if h.Members[i] != want[i] {
			return fmt.Errorf("network: aggregator %d announced member %d at position %d, the router assigns %d",
				h.Agg, h.Members[i], i, want[i])
		}
	}
	if int(h.Present) > len(want) {
		return fmt.Errorf("network: aggregator %d reports %d present of %d members", h.Agg, h.Present, len(want))
	}
	return nil
}

// gatherShards collects one batch's reduced frames from every live
// aggregator concurrently, the tree counterpart of gather. Shaped
// referees land partial sums in shardSums; opaque referees scatter
// the forwarded planes back into bs.deliv by player id, so the
// per-trial fallback sees exactly the flat gather's delivery table.
// It returns the number of player votes the tree received, summed
// from the per-shard present-counts.
func (bs *batchSession) gatherShards(batchID uint32, count int) int {
	for i := range bs.deliv {
		bs.deliv[i] = nil
	}
	for i := range bs.shardGot {
		bs.shardGot[i] = false
		bs.shardSums[i] = nil
		bs.shardPresent[i] = 0
	}
	shaped := bs.shapeOK || bs.sumOK
	words := batchWords(count)
	var wg sync.WaitGroup
	for _, slot := range bs.slots {
		if slot.isDead() {
			continue
		}
		wg.Add(1)
		//lint:ignore dut/hotalloc one reader goroutine per live member per batch, amortized across the batch's trials
		go func(slot *batchSlot) {
			defer wg.Done()
			conn := slot.sl.conn
			agg := slot.sl.player
			// The reduced frame waits on the aggregator's own member gather
			// (itself budgeted two timeouts) plus the reduction; budget three.
			setReadDeadline(conn, 3*bs.server.timeout)
			if shaped {
				v, err := expectFrame[AggSum](conn, FrameAggSum)
				if err != nil {
					bs.failSlot(slot, fmt.Errorf("network: reduced batch from aggregator %d: %w", agg, err))
					return
				}
				if v.Agg != agg {
					bs.failSlot(slot, fmt.Errorf("network: reduced batch claims aggregator %d on aggregator %d's connection", v.Agg, agg))
					return
				}
				if v.Batch != batchID {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d answered batch %d, expected %d", agg, v.Batch, batchID))
					return
				}
				if int(v.Count) != count {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d reduced %d trials of batch %d, expected %d", agg, v.Count, v.Batch, count))
					return
				}
				if int(v.Bits) != bs.msgBits {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d sent %d-bit sums, the rule uses %d bits", agg, v.Bits, bs.msgBits))
					return
				}
				if int(v.Planes) != len(bs.planes) {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d sent %d counter planes, the referee needs %d", agg, v.Planes, len(bs.planes)))
					return
				}
				if int(v.Present) > len(bs.shards[agg]) {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d reports %d present of %d members", agg, v.Present, len(bs.shards[agg])))
					return
				}
				bs.shardSums[agg] = v.Sums
				bs.shardPresent[agg] = v.Present
				bs.shardGot[agg] = true
			} else {
				v, err := expectFrame[AggPlanes](conn, FrameAggPlanes)
				if err != nil {
					bs.failSlot(slot, fmt.Errorf("network: forwarded batch from aggregator %d: %w", agg, err))
					return
				}
				if v.Agg != agg {
					bs.failSlot(slot, fmt.Errorf("network: forwarded batch claims aggregator %d on aggregator %d's connection", v.Agg, agg))
					return
				}
				if v.Batch != batchID {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d answered batch %d, expected %d", agg, v.Batch, batchID))
					return
				}
				if int(v.Count) != count {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d forwarded %d trials of batch %d, expected %d", agg, v.Count, v.Batch, count))
					return
				}
				if int(v.Bits) != bs.msgBits {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d sent %d-bit planes, the rule uses %d bits", agg, v.Bits, bs.msgBits))
					return
				}
				members := bs.shards[agg]
				if int(v.Members) != len(members) {
					bs.failSlot(slot, fmt.Errorf("network: aggregator %d forwarded %d members, the router assigns it %d", agg, v.Members, len(members)))
					return
				}
				stride := bs.msgBits * words
				mi := 0
				for pos, player := range members {
					if v.Mask[pos/64]>>(pos%64)&1 == 1 {
						bs.deliv[player] = v.Planes[mi*stride : (mi+1)*stride]
						mi++
					}
				}
				bs.shardPresent[agg] = v.Present
				bs.shardGot[agg] = true
			}
		}(slot)
	}
	wg.Wait()
	received := 0
	for i := range bs.shardGot {
		if bs.shardGot[i] {
			received += int(bs.shardPresent[i])
		}
	}
	return received
}

// decideBatchShards evaluates a gathered sharded batch word-parallel:
// combine every shard's partial sums lane-wise, check the quorum, then
// compare each lane's total against the presence-adjusted threshold —
// the same bit-sliced comparator the flat fast path uses, fed by the
// tree's counters instead of per-player vote words.
//
//dut:hotpath
func (bs *batchSession) decideBatchShards(count, received int, verdictBits []uint64) error {
	words := batchWords(count)
	planes := len(bs.planes)
	need := planes * words
	if cap(bs.aggSums) < need {
		bs.aggSums = make([]uint64, need)
	}
	acc := bs.aggSums[:need]
	clear(acc)
	for i := range bs.shardGot {
		if !bs.shardGot[i] {
			continue
		}
		if combineShardSums(acc, bs.shardSums[i], planes, words) {
			return fmt.Errorf("network: aggregator %d overflowed the referee's batch counters", i)
		}
	}
	if received < bs.server.minVotes {
		return fmt.Errorf("network: quorum not met: %d of %d votes, need %d", received, bs.c.k, bs.server.minVotes)
	}
	t, err := bs.adjustedThreshold(received)
	if err != nil {
		return err
	}
	col := bs.planes
	for w := 0; w < words; w++ {
		for p := 0; p < planes; p++ {
			col[p] = acc[p*words+w]
		}
		verdictBits[w] = ^atLeast(col, t)
	}
	if rem := count % 64; rem != 0 {
		verdictBits[words-1] &= 1<<rem - 1
	}
	return nil
}

// adjustedThreshold maps the batch's presence onto the rejection- or
// sum-threshold the flat referee's decideVotes would effectively apply
// with received of k votes in. Absent players enter the flat decision
// per the resolved absentee policy: Omit re-shapes the rule at the
// smaller count (exact for every stock threshold rule — AND stays 1,
// OR and Majority follow the count, fixed thresholds stay fixed);
// Accept contributes zero rejections (zero value), leaving the
// threshold alone for sums and — because the tree's counters only ever
// count real votes — for thresholds too; Reject contributes one
// rejection (value zero) per absentee, so the remaining votes need
// that many fewer rejections.
func (bs *batchSession) adjustedThreshold(received int) (int, error) {
	k := bs.c.k
	if bs.shapeOK {
		if received == k {
			return bs.shapeT, nil
		}
		switch core.ResolveAbsentee(bs.server.policy, bs.server.decide) {
		case core.AbsenteeOmit:
			t, ok := core.ThresholdShape(bs.server.decide, received)
			if !ok {
				return 0, fmt.Errorf("network: referee lost its threshold shape at %d votes", received)
			}
			return t, nil
		case core.AbsenteeAccept:
			return bs.shapeT, nil
		default: // core.AbsenteeReject: each absentee is one rejection already counted for.
			return bs.shapeT - (k - received), nil
		}
	}
	if received == k {
		return bs.sumT, nil
	}
	if core.ResolveAbsentee(bs.server.policy, bs.server.decide) == core.AbsenteeAccept {
		// core.Accept is message value 1, so each absentee adds one to the
		// flat sum; the tree's counters hold only real votes.
		return bs.sumT - (k - received), nil
	}
	// Omit and Reject both contribute value zero to the sum.
	return bs.sumT, nil
}
