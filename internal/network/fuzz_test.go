package network

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzFrame hammers the wire decoder with arbitrary bytes: it must
// never panic, and any frame it does accept must re-encode to an
// equivalent frame (round-trip coherence). Run with `go test -fuzz
// FuzzFrame ./internal/network` for continuous fuzzing; the seed
// corpus runs as part of the normal test suite, and CI runs a short
// -fuzztime smoke on every push.
func FuzzFrame(f *testing.F) {
	// Seed with every valid frame type plus structural mutations.
	var hello, round, vote, verdict, finish bytes.Buffer
	_ = WriteHello(&hello, Hello{Player: 3, Bits: 1})
	_ = WriteRound(&round, Round{Seed: 0xfeedface})
	_ = WriteVote(&vote, Vote{Player: 3, Message: 99})
	_ = WriteVerdict(&verdict, Verdict{Accept: true})
	_ = WriteFinish(&finish)
	f.Add(hello.Bytes())
	f.Add(round.Bytes())
	f.Add(vote.Bytes())
	f.Add(verdict.Bytes())
	f.Add(finish.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xD0, 0x7A, 1, 14, 0, 0, 0, 0})               // unknown type
	f.Add([]byte{0x00, 0x00, 1, 1, 0, 0, 0, 0})                // bad magic
	f.Add([]byte{0xD0, 0x7A, 9, 1, 0, 0, 0, 0})                // bad version
	f.Add([]byte{0xD0, 0x7A, 1, 1, 0xFF, 0xFF, 0xFF, 0xFF})    // huge length
	f.Add([]byte{0xD0, 0x7A, 1, 2, 0, 0, 0, 4, 1, 2, 3, 4})    // ROUND payload of 4 bytes, want 8
	f.Add([]byte{0xD0, 0x7A, 1, 3, 0, 0, 0, 5, 1, 2, 3, 4, 5}) // VOTE payload of 5 bytes, want 12
	f.Add([]byte{0xD0, 0x7A, 1, 4, 0, 0, 0, 1, 2})             // VERDICT byte other than 0/1
	f.Add([]byte{0xD0, 0x7A, 1, 4, 0, 0, 0, 1, 0xFF})          // VERDICT byte 0xFF
	f.Add([]byte{0xD0, 0x7A, 1, 5, 0, 0, 0, 1, 0})             // FINISH with a payload byte

	// Valid batch frames, including a partial final word and a bitset
	// spanning two words.
	var roundBatch, voteBatch, verdictBatch bytes.Buffer
	_ = WriteRoundBatch(&roundBatch, RoundBatch{Batch: 7, Seeds: []uint64{1, 0xfeedface, 3}})
	_ = WriteVoteBatch(&voteBatch, VoteBatch{Player: 3, Batch: 7, Count: 3, Bits: []uint64{0b101}})
	_ = WriteVerdictBatch(&verdictBatch, VerdictBatch{Batch: 7, Count: 65, Bits: []uint64{^uint64(0), 1}})
	f.Add(roundBatch.Bytes())
	f.Add(voteBatch.Bytes())
	f.Add(verdictBatch.Bytes())

	// Malformed batch frames the decoder must reject (never panic on):
	// length prefixes disagreeing with the count field, counts out of
	// range, wrong bitset word counts, and non-zero padding bits.
	f.Add([]byte{0xD0, 0x7A, 1, 6, 0, 0, 0, 8,
		0, 0, 0, 7, 0, 0, 0, 5}) // ROUND_BATCH count 5, zero seeds
	f.Add([]byte{0xD0, 0x7A, 1, 6, 0, 0, 0, 8,
		0, 0, 0, 7, 0, 0, 0, 0}) // ROUND_BATCH count 0
	f.Add([]byte{0xD0, 0x7A, 1, 6, 0, 0, 0, 12,
		0, 0, 0, 7, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4}) // ROUND_BATCH huge count
	f.Add([]byte{0xD0, 0x7A, 1, 7, 0, 0, 0, 20,
		0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 2}) // VOTE_BATCH count 1 with padding bit 1 set
	f.Add([]byte{0xD0, 0x7A, 1, 7, 0, 0, 0, 20,
		0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0}) // VOTE_BATCH count 0
	f.Add([]byte{0xD0, 0x7A, 1, 7, 0, 0, 0, 12,
		0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 65}) // VOTE_BATCH count 65, zero words
	f.Add([]byte{0xD0, 0x7A, 1, 8, 0, 0, 0, 24,
		0, 0, 0, 7, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 0}) // VERDICT_BATCH count 1 with two words
	f.Add([]byte{0xD0, 0x7A, 1, 8, 0xFF, 0xFF, 0xFF, 0xFF}) // VERDICT_BATCH huge length prefix

	// Valid r-bit vote batches across the width range: single plane,
	// two planes, and wide frames whose trial lanes span plane strides.
	for _, tc := range []struct {
		bits  uint8
		count uint32
	}{{1, 3}, {2, 7}, {7, 65}, {8, 64}} {
		planes := make([]uint64, int(tc.bits)*batchWords(int(tc.count)))
		for b := 0; b < int(tc.bits); b++ {
			for j := uint32(0); j < tc.count; j++ {
				if (uint32(b)+j)%3 == 0 {
					planes[b*batchWords(int(tc.count))+int(j)/64] |= 1 << (j % 64)
				}
			}
		}
		var buf bytes.Buffer
		_ = WriteVoteBatchR(&buf, VoteBatchR{Player: 3, Batch: 7, Count: tc.count, Bits: tc.bits, Planes: planes})
		f.Add(buf.Bytes())
	}

	// Malformed VOTE_BATCH_R frames the decoder must reject: width out
	// of range, a stride disagreeing with the announced width, and
	// nonzero padding past the trial count.
	f.Add([]byte{0xD0, 0x7A, 1, 9, 0, 0, 0, 13,
		0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 1, 0}) // bits 0
	f.Add([]byte{0xD0, 0x7A, 1, 9, 0, 0, 0, 13,
		0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 1, 65}) // bits 65
	f.Add([]byte{0xD0, 0x7A, 1, 9, 0, 0, 0, 21,
		0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 1, 2,
		0, 0, 0, 0, 0, 0, 0, 1}) // bits 2 but a 1-plane stride
	f.Add([]byte{0xD0, 0x7A, 1, 9, 0, 0, 0, 29,
		0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 1, 2,
		0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 2}) // count 1 with padding bit set in plane 1
	f.Add([]byte{0xD0, 0x7A, 1, 9, 0, 0, 0, 13,
		0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 0, 1}) // count 0

	// Valid aggregator frames: a handshake with a partially-present
	// shard, a reduced sum batch with a partial final word, and a
	// forwarded plane batch with an absent member in the mask — plus the
	// degenerate all-absent plane frame.
	var aggHello, aggSum, aggPlanes, aggEmpty bytes.Buffer
	_ = WriteAggHello(&aggHello, AggHello{Agg: 1, Bits: 3, Present: 2, Members: []uint32{2, 5, 9}})
	_ = WriteAggSum(&aggSum, AggSum{Agg: 1, Batch: 7, Count: 65, Bits: 2, Planes: 3, Present: 4,
		Sums: []uint64{0xAAAA, 1, 0x5555, 0, 0xF0F0, 1}})
	_ = WriteAggPlanes(&aggPlanes, AggPlanes{Agg: 1, Batch: 7, Count: 3, Bits: 2, Members: 3, Present: 2,
		Mask: []uint64{0b101}, Planes: []uint64{0b101, 0b011, 0b110, 0b001}})
	_ = WriteAggPlanes(&aggEmpty, AggPlanes{Agg: 2, Batch: 7, Count: 3, Bits: 2, Members: 3, Present: 0,
		Mask: []uint64{0}})
	f.Add(aggHello.Bytes())
	f.Add(aggSum.Bytes())
	f.Add(aggPlanes.Bytes())
	f.Add(aggEmpty.Bytes())

	// Valid downstream verdict fan-out frames: a multi-shard accounting
	// vector with an absent shard, and a bitset spanning two words.
	var aggVerdict, aggVerdictWide bytes.Buffer
	_ = WriteAggVerdict(&aggVerdict, AggVerdict{Batch: 7, Count: 3, Present: []uint32{2, 0, 5}, Bits: []uint64{0b101}})
	_ = WriteAggVerdict(&aggVerdictWide, AggVerdict{Batch: 7, Count: 65, Present: []uint32{9}, Bits: []uint64{^uint64(0), 1}})
	f.Add(aggVerdict.Bytes())
	f.Add(aggVerdictWide.Bytes())

	// Malformed aggregator frames the decoder must reject: duplicate
	// members, a present count exceeding the shard, counter strides
	// disagreeing with the plane count, non-zero padding above the trial
	// count or the member count, and a present count disagreeing with
	// the mask popcount.
	f.Add([]byte{0xD0, 0x7A, 1, 10, 0, 0, 0, 21,
		0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 2,
		0, 0, 0, 5, 0, 0, 0, 5}) // AGG_HELLO duplicate member 5
	f.Add([]byte{0xD0, 0x7A, 1, 10, 0, 0, 0, 21,
		0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 2,
		0, 0, 0, 5, 0, 0, 0, 3}) // AGG_HELLO members not ascending
	f.Add([]byte{0xD0, 0x7A, 1, 10, 0, 0, 0, 17,
		0, 0, 0, 1, 1, 0, 0, 0, 3, 0, 0, 0, 1,
		0, 0, 0, 0}) // AGG_HELLO 3 present of 1 member
	f.Add([]byte{0xD0, 0x7A, 1, 11, 0, 0, 0, 26,
		0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 1, 1, 2,
		0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 0}) // AGG_SUM 2 planes, 1 sum word
	f.Add([]byte{0xD0, 0x7A, 1, 11, 0, 0, 0, 26,
		0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 1, 1, 1,
		0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 2}) // AGG_SUM padding bit above trial 0
	f.Add([]byte{0xD0, 0x7A, 1, 11, 0, 0, 0, 18,
		0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 1, 1, 0,
		0, 0, 0, 4}) // AGG_SUM zero planes
	f.Add([]byte{0xD0, 0x7A, 1, 12, 0, 0, 0, 37,
		0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 1, 1,
		0, 0, 0, 2, 0, 0, 0, 2,
		0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 1}) // AGG_PLANES present 2, mask popcount 1
	f.Add([]byte{0xD0, 0x7A, 1, 12, 0, 0, 0, 37,
		0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 1, 1,
		0, 0, 0, 1, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 2,
		0, 0, 0, 0, 0, 0, 0, 1}) // AGG_PLANES mask bit above the only member
	f.Add([]byte{0xD0, 0x7A, 1, 12, 0, 0, 0, 37,
		0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 1, 1,
		0, 0, 0, 1, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 2}) // AGG_PLANES padding bit above trial 0

	// Malformed AGG_VERDICT frames the decoder must reject: an empty
	// shard accounting vector, a bitset stride disagreeing with the trial
	// count, non-zero padding above the count, and a present echo larger
	// than any shard can hold.
	f.Add([]byte{0xD0, 0x7A, 1, 13, 0, 0, 0, 12,
		0, 0, 0, 7, 0, 0, 0, 1, 0, 0, 0, 0}) // AGG_VERDICT zero shards
	f.Add([]byte{0xD0, 0x7A, 1, 13, 0, 0, 0, 32,
		0, 0, 0, 7, 0, 0, 0, 1, 0, 0, 0, 1,
		0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 0}) // AGG_VERDICT count 1 with two words
	f.Add([]byte{0xD0, 0x7A, 1, 13, 0, 0, 0, 24,
		0, 0, 0, 7, 0, 0, 0, 1, 0, 0, 0, 1,
		0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 2}) // AGG_VERDICT padding bit above trial 0
	f.Add([]byte{0xD0, 0x7A, 1, 13, 0, 0, 0, 24,
		0, 0, 0, 7, 0, 0, 0, 1, 0, 0, 0, 1,
		0xFF, 0xFF, 0xFF, 0xFF,
		0, 0, 0, 0, 0, 0, 0, 1}) // AGG_VERDICT present over the shard cap
	f.Add([]byte{0xD0, 0x7A, 1, 13, 0xFF, 0xFF, 0xFF, 0xFF}) // AGG_VERDICT huge length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, msg, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejects are fine; panics are not
		}
		// Accepted frames must round-trip.
		var buf bytes.Buffer
		switch m := msg.(type) {
		case Hello:
			if err := WriteHello(&buf, m); err != nil {
				t.Fatalf("re-encode hello: %v", err)
			}
		case Round:
			if err := WriteRound(&buf, m); err != nil {
				t.Fatalf("re-encode round: %v", err)
			}
		case Vote:
			if err := WriteVote(&buf, m); err != nil {
				t.Fatalf("re-encode vote: %v", err)
			}
		case Verdict:
			if err := WriteVerdict(&buf, m); err != nil {
				t.Fatalf("re-encode verdict: %v", err)
			}
		case Finish:
			if err := WriteFinish(&buf); err != nil {
				t.Fatalf("re-encode finish: %v", err)
			}
		case RoundBatch:
			if len(m.Seeds) == 0 {
				t.Fatalf("decoder accepted empty ROUND_BATCH: %+v", m)
			}
			if err := WriteRoundBatch(&buf, m); err != nil {
				t.Fatalf("re-encode round batch: %v", err)
			}
		case VoteBatch:
			if err := checkBatchBits(FrameVoteBatch, int(m.Count), m.Bits); err != nil {
				t.Fatalf("decoder accepted invalid VOTE_BATCH bitset: %v", err)
			}
			if err := WriteVoteBatch(&buf, m); err != nil {
				t.Fatalf("re-encode vote batch: %v", err)
			}
		case VoteBatchR:
			if err := checkBatchPlanes(FrameVoteBatchR, int(m.Count), int(m.Bits), m.Planes); err != nil {
				t.Fatalf("decoder accepted invalid VOTE_BATCH_R planes: %v", err)
			}
			if err := WriteVoteBatchR(&buf, m); err != nil {
				t.Fatalf("re-encode r-bit vote batch: %v", err)
			}
		case AggHello:
			if err := checkAggHello(m); err != nil {
				t.Fatalf("decoder accepted invalid AGG_HELLO: %v", err)
			}
			if err := WriteAggHello(&buf, m); err != nil {
				t.Fatalf("re-encode agg hello: %v", err)
			}
		case AggSum:
			if err := checkAggSum(m); err != nil {
				t.Fatalf("decoder accepted invalid AGG_SUM: %v", err)
			}
			if err := WriteAggSum(&buf, m); err != nil {
				t.Fatalf("re-encode agg sum: %v", err)
			}
		case AggPlanes:
			if err := checkAggPlanes(m); err != nil {
				t.Fatalf("decoder accepted invalid AGG_PLANES: %v", err)
			}
			if err := WriteAggPlanes(&buf, m); err != nil {
				t.Fatalf("re-encode agg planes: %v", err)
			}
		case AggVerdict:
			if err := checkAggVerdict(m); err != nil {
				t.Fatalf("decoder accepted invalid AGG_VERDICT: %v", err)
			}
			if err := WriteAggVerdict(&buf, m); err != nil {
				t.Fatalf("re-encode agg verdict: %v", err)
			}
		case VerdictBatch:
			if err := checkBatchBits(FrameVerdictBatch, int(m.Count), m.Bits); err != nil {
				t.Fatalf("decoder accepted invalid VERDICT_BATCH bitset: %v", err)
			}
			if err := WriteVerdictBatch(&buf, m); err != nil {
				t.Fatalf("re-encode verdict batch: %v", err)
			}
		default:
			t.Fatalf("decoded unknown type %T", msg)
		}
		typ2, msg2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		// Batch frames hold bitset slices, so structural equality rather
		// than ==.
		if typ2 != typ || !reflect.DeepEqual(msg2, msg) {
			t.Fatalf("round trip changed frame: (%v, %+v) -> (%v, %+v)", typ, msg, typ2, msg2)
		}
	})
}
