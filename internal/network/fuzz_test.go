package network

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hammers the wire decoder with arbitrary bytes: it must
// never panic, and any frame it does accept must re-encode to an
// equivalent frame (round-trip coherence). Run with `go test -fuzz
// FuzzReadFrame ./internal/network` for continuous fuzzing; the seed
// corpus runs as part of the normal test suite.
func FuzzReadFrame(f *testing.F) {
	// Seed with every valid frame type plus structural mutations.
	var hello, round, vote, verdict bytes.Buffer
	_ = WriteHello(&hello, Hello{Player: 3, Bits: 1})
	_ = WriteRound(&round, Round{Seed: 0xfeedface})
	_ = WriteVote(&vote, Vote{Player: 3, Message: 99})
	_ = WriteVerdict(&verdict, Verdict{Accept: true})
	f.Add(hello.Bytes())
	f.Add(round.Bytes())
	f.Add(vote.Bytes())
	f.Add(verdict.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xD0, 0x7A, 1, 9, 0, 0, 0, 0})             // unknown type
	f.Add([]byte{0x00, 0x00, 1, 1, 0, 0, 0, 0})             // bad magic
	f.Add([]byte{0xD0, 0x7A, 9, 1, 0, 0, 0, 0})             // bad version
	f.Add([]byte{0xD0, 0x7A, 1, 1, 0xFF, 0xFF, 0xFF, 0xFF}) // huge length
	f.Add([]byte{0xD0, 0x7A, 1, 4, 0, 0, 0, 1, 2})          // VERDICT byte other than 0/1
	f.Add([]byte{0xD0, 0x7A, 1, 4, 0, 0, 0, 1, 0xFF})       // VERDICT byte 0xFF

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, msg, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejects are fine; panics are not
		}
		// Accepted frames must round-trip.
		var buf bytes.Buffer
		switch m := msg.(type) {
		case Hello:
			if err := WriteHello(&buf, m); err != nil {
				t.Fatalf("re-encode hello: %v", err)
			}
		case Round:
			if err := WriteRound(&buf, m); err != nil {
				t.Fatalf("re-encode round: %v", err)
			}
		case Vote:
			if err := WriteVote(&buf, m); err != nil {
				t.Fatalf("re-encode vote: %v", err)
			}
		case Verdict:
			if err := WriteVerdict(&buf, m); err != nil {
				t.Fatalf("re-encode verdict: %v", err)
			}
		default:
			t.Fatalf("decoded unknown type %T", msg)
		}
		typ2, msg2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if typ2 != typ || msg2 != msg {
			t.Fatalf("round trip changed frame: (%v, %+v) -> (%v, %+v)", typ, msg, typ2, msg2)
		}
	})
}
