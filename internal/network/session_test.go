package network

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
)

func TestRunManyBasics(t *testing.T) {
	// Deterministic rule: accept iff the first sample is even.
	rule := core.RuleFunc(func(_ int, samples []int, _ uint64, _ *rand.Rand) (core.Message, error) {
		if samples[0]%2 == 0 {
			return core.Accept, nil
		}
		return core.Reject, nil
	})
	c, err := NewCluster(ClusterConfig{
		K: 4, Q: 1, Rule: rule, Referee: core.BitReferee{Rule: core.ANDRule{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	evens, err := dist.FromWeights([]float64{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := dist.NewAliasSampler(evens)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := c.RunMany(context.Background(), s, testRand(1), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 7 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	for i, v := range verdicts {
		if !v {
			t.Errorf("round %d rejected all-even input", i)
		}
	}
	maj, err := MajorityVerdict(verdicts)
	if err != nil || !maj {
		t.Errorf("majority = %v, %v", maj, err)
	}
}

func TestRunManyValidation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		K: 1, Q: 1, Rule: acceptAllRule(), Referee: core.BitReferee{Rule: core.ANDRule{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := uniformSampler(t, 4)
	if _, err := c.RunMany(context.Background(), nil, testRand(0), 3); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := c.RunMany(context.Background(), s, nil, 3); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := c.RunMany(context.Background(), s, testRand(0), 0); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestMajorityVerdict(t *testing.T) {
	if _, err := MajorityVerdict(nil); err == nil {
		t.Error("empty verdicts accepted")
	}
	maj, err := MajorityVerdict([]bool{true, false, true})
	if err != nil || !maj {
		t.Errorf("majority = %v, %v", maj, err)
	}
	maj, err = MajorityVerdict([]bool{true, false, false, false})
	if err != nil || maj {
		t.Errorf("minority = %v, %v", maj, err)
	}
}

func TestSessionMatchesSingleRounds(t *testing.T) {
	// A 21-round session's acceptance frequency on uniform input matches
	// 21 independent single rounds, and amplification beats one round.
	const (
		n   = 256
		k   = 8
		eps = 0.5
	)
	q := core.RecommendedThresholdSamples(n, k, eps)
	smp, err := core.NewThresholdTester(core.ThresholdTesterConfig{N: n, K: k, Q: q, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K: k, Q: q,
		Rule:    smp.Local(),
		Referee: core.BitReferee{Rule: core.ThresholdRule{T: core.DefaultThresholdT(k)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dist.Uniform(n)
	s, err := dist.NewAliasSampler(uniform)
	if err != nil {
		t.Fatal(err)
	}
	rng := testRand(9)
	acceptCount, total := 0, 0
	majorities := 0
	const sessions = 12
	for i := 0; i < sessions; i++ {
		verdicts, err := c.RunMany(context.Background(), s, rng, 21)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range verdicts {
			total++
			if v {
				acceptCount++
			}
		}
		maj, err := MajorityVerdict(verdicts)
		if err != nil {
			t.Fatal(err)
		}
		if maj {
			majorities++
		}
	}
	perRound := float64(acceptCount) / float64(total)
	if math.Abs(perRound-0.97) > 0.12 {
		t.Errorf("per-round acceptance %v, want near the tester's ~0.97", perRound)
	}
	if majorities != sessions {
		t.Errorf("majority verdict wrong in %d/%d sessions", sessions-majorities, sessions)
	}
}

func TestSessionOverTCP(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		K: 3, Q: 2, Rule: acceptAllRule(),
		Referee:   core.BitReferee{Rule: core.ANDRule{}},
		Transport: TCPTransport{},
	})
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := c.RunMany(context.Background(), uniformSampler(t, 8), testRand(10), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 5 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
}

func TestSessionFreshSeedsPerRound(t *testing.T) {
	// Each round must carry a distinct public seed.
	var mu = make(chan uint64, 64)
	rule := core.RuleFunc(func(_ int, _ []int, shared uint64, _ *rand.Rand) (core.Message, error) {
		select {
		case mu <- shared:
		default:
		}
		return core.Accept, nil
	})
	c, err := NewCluster(ClusterConfig{
		K: 1, Q: 0, Rule: rule, Referee: core.BitReferee{Rule: core.ANDRule{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunMany(context.Background(), uniformSampler(t, 4), testRand(11), 6); err != nil {
		t.Fatal(err)
	}
	close(mu)
	seen := map[uint64]bool{}
	count := 0
	for s := range mu {
		if seen[s] {
			t.Fatalf("seed %d repeated across rounds", s)
		}
		seen[s] = true
		count++
	}
	if count != 6 {
		t.Fatalf("rule saw %d seeds, want 6", count)
	}
}

func TestSessionCancellation(t *testing.T) {
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	rule := core.RuleFunc(func(int, []int, uint64, *rand.Rand) (core.Message, error) {
		<-block
		return core.Accept, nil
	})
	c, err := NewCluster(ClusterConfig{
		K: 2, Q: 0, Rule: rule,
		Referee: core.BitReferee{Rule: core.ANDRule{}},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.RunMany(ctx, uniformSampler(t, 4), testRand(12), 3)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled session reported success")
		}
	case <-time.After(3 * time.Second):
		t.Error("cancellation did not abort the session")
	}
}

func TestRefereeSessionValidation(t *testing.T) {
	s, err := NewRefereeServer(1, core.BitReferee{Rule: core.ANDRule{}}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSession(context.Background(), nil, []uint64{1}); err == nil {
		t.Error("nil listener accepted")
	}
	m := NewMemTransport()
	l, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if _, err := s.RunSession(context.Background(), l, nil); err == nil {
		t.Error("zero rounds accepted")
	}
}
