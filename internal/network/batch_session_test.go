package network

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/engine"
)

// White-box coverage of the batch session's queueing and failure
// accounting: the frame queue's ping-pong buffers must stay at their
// high-water mark instead of growing with throughput, an empty chunk
// must leave accumulated connect retries for the next chunk's stats, and
// a strict-mode window where every slot dies must still surface the
// recorded node failure rather than the gathers' collateral EOFs.

func strictBatchCluster(t *testing.T, tr Transport) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		K:         4,
		Q:         1,
		Rule:      acceptAllRule(),
		Referee:   andReferee(),
		Transport: tr,
		Timeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFrameQueueCapacityBounded cycles far more frames through the queue
// than its backing buffers could hold if consumed bytes were pinned (the
// old items[1:] advance) and checks both buffers stay at the per-cycle
// high-water mark.
func TestFrameQueueCapacityBounded(t *testing.T) {
	q := newFrameQueue()
	frame := AppendFinish(nil)
	const (
		cycles   = 10000
		perCycle = 4
	)
	var spare []byte
	for cycle := 0; cycle < cycles; cycle++ {
		for i := 0; i < perCycle; i++ {
			q.push(frame)
		}
		run, frames, ok := q.drain(spare)
		if !ok || frames != perCycle {
			t.Fatalf("cycle %d: drain = (%d frames, ok=%v), want %d frames", cycle, frames, ok, perCycle)
		}
		if len(run) != perCycle*len(frame) {
			t.Fatalf("cycle %d: drained %d bytes, want %d", cycle, len(run), perCycle*len(frame))
		}
		spare = run
	}
	// The steady state holds one cycle's worth of frames; allow generous
	// append-growth slack. cycles*perCycle*len(frame) = 320000 bytes have
	// passed through, so an unbounded queue would dwarf this.
	const bound = 1024
	if cap(q.buf) > bound || cap(spare) > bound {
		t.Errorf("queue buffers grew to cap %d / %d after %d frames, want <= %d",
			cap(q.buf), cap(spare), cycles*perCycle, bound)
	}
}

// TestFrameQueueCloseSemantics: pending frames drain after close, pushes
// after close are dropped, and a drained closed queue reports done.
func TestFrameQueueCloseSemantics(t *testing.T) {
	q := newFrameQueue()
	frame := AppendFinish(nil)
	q.push(frame)
	q.close()
	q.push(frame) // dropped: the queue is closed
	run, frames, ok := q.drain(nil)
	if !ok || frames != 1 || len(run) != len(frame) {
		t.Fatalf("drain after close = (%d bytes, %d frames, ok=%v), want the one pending frame", len(run), frames, ok)
	}
	if _, _, ok := q.drain(run); ok {
		t.Error("second drain on a closed empty queue reported ok")
	}
}

// TestBatchEmptyChunkPreservesRetries is the regression test for the
// zero-spec accounting bug: runChunk used to claim accumulated connect
// retries before checking whether any flight would carry them, silently
// dropping the count on an empty chunk.
func TestBatchEmptyChunkPreservesRetries(t *testing.T) {
	c := strictBatchCluster(t, NewMemTransport())
	bs, err := newBatchSession(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := bs.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	bs.addRetries(3)
	if err := bs.runChunk(context.Background(), nil, 4, nil); err != nil {
		t.Fatalf("empty chunk: %v", err)
	}
	specs := []engine.RoundSpec{{Trial: 0, Seed: 5, Sampler: uniformSampler(t, 4)}}
	out := make([]engine.RoundResult, 1)
	if err := bs.runChunk(context.Background(), specs, 4, out); err != nil {
		t.Fatalf("chunk: %v", err)
	}
	if out[0].Retries != 3 {
		t.Errorf("retries after an empty chunk = %d, want 3 (empty chunks must not swallow them)", out[0].Retries)
	}
}

// TestBatchStrictAllSlotsCrash kills every player mid-window and checks
// the strict-mode teardown blames the recorded node crash, not one of
// the EOFs every concurrent gather dies with once the session unwinds.
func TestBatchStrictAllSlotsCrash(t *testing.T) {
	plans := map[uint32]FaultPlan{}
	for p := uint32(0); p < 4; p++ {
		plans[p] = FaultPlan{CrashAtRound: 2}
	}
	ft, err := NewFaultTransport(NewMemTransport(), FaultConfig{Plans: plans})
	if err != nil {
		t.Fatal(err)
	}
	c := strictBatchCluster(t, ft)
	b, err := NewBackend(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Run(context.Background(), b, engine.Fixed(uniformSampler(t, 4)), 8,
		engine.Options{Seed: 5, Workers: 1, Batch: 2, Window: 2})
	if err == nil {
		t.Fatal("strict run with every player crashing succeeded")
	}
	if !strings.Contains(err.Error(), "crashed") {
		t.Errorf("err = %v, want the recorded player crash, not a collateral transport error", err)
	}
	// The first crash tears the strict session down, so how many of the
	// remaining players get to crash before their connections close is a
	// race — at least one must have fired.
	if fs := ft.Stats(); fs.Crashes < 1 {
		t.Errorf("crashes = %d, want at least 1", fs.Crashes)
	}
}

// TestFirstSlotErr exercises the gather-failure triage directly: a
// descriptive protocol violation beats collateral transport errors, the
// first transport error stands when that is all there is, and a gather
// that came up short with nothing recorded gets the explicit fallback.
func TestFirstSlotErr(t *testing.T) {
	eof := fmt.Errorf("network: vote batch from player 0: %w", io.EOF)
	desc := errors.New("network: player 1 answered batch 7, expected 3")
	for _, tc := range []struct {
		name  string
		slots []*batchSlot
		want  string
		exact error
	}{
		{name: "descriptive beats transport", slots: []*batchSlot{{err: eof}, {err: desc}}, exact: desc},
		{name: "transport only", slots: []*batchSlot{{}, {err: eof}}, exact: eof},
		{name: "nothing recorded", slots: []*batchSlot{{}, {}}, want: "no recorded slot failure"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bs := &batchSession{slots: tc.slots}
			got := bs.firstSlotErr()
			if tc.exact != nil && got != tc.exact {
				t.Errorf("firstSlotErr = %v, want %v", got, tc.exact)
			}
			if tc.want != "" && (got == nil || !strings.Contains(got.Error(), tc.want)) {
				t.Errorf("firstSlotErr = %v, want it to mention %q", got, tc.want)
			}
		})
	}
}
