package network

import (
	"testing"
	"time"

	"github.com/distributed-uniformity/dut/internal/core"
)

// countingRun drives trials through a sharded (or flat, shards <= 1)
// cluster over a fresh CountingTransport and returns the per-tier
// snapshot after the session closed (treeResults runs the engine to
// completion, so every queued frame has drained by then).
func countingRun(t *testing.T, k, shards, trials, batch, window int) (root, agg TierCounts) {
	t.Helper()
	ct, err := NewCountingTransport(NewMemTransport())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		K: k, Q: treeSamples,
		Rule:      treeTestRule{bits: 1},
		Referee:   core.BitReferee{Rule: core.MajorityRule{}},
		Transport: ct,
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var opts []BackendOption
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}
	treeResults(t, treeBackend(t, c, opts...), uniformSampler(t, 16), trials, batch, window)
	root, agg = ct.Snapshot()
	return root, agg
}

// TestCountingRootWritesScaleWithAggregators is the tentpole's load-
// bearing claim as a test: on the tree the root's downstream verdict
// traffic is one AGG_VERDICT per aggregator per batch — no
// VERDICT_BATCH leaves the root at all — while the full per-player
// VERDICT_BATCH fan-out happens one tier down. Doubling the player
// count at a fixed aggregator count must leave the root's downstream
// frame counts exactly unchanged.
func TestCountingRootWritesScaleWithAggregators(t *testing.T) {
	const (
		k      = 24
		shards = 4
		trials = 12
		batch  = 4
		window = 2
	)
	batches := uint64((trials + batch - 1) / batch)

	root, agg := countingRun(t, k, shards, trials, batch, window)
	if got := root.Down[FrameAggVerdict]; got != batches*shards {
		t.Errorf("root wrote %d AGG_VERDICT frames, want %d (one per aggregator per batch)", got, batches*shards)
	}
	if got := root.Down[FrameVerdictBatch]; got != 0 {
		t.Errorf("root wrote %d VERDICT_BATCH frames, want 0 (verdicts fan out via the aggregators)", got)
	}
	if got := root.Down[FrameRoundBatch]; got != batches*shards {
		t.Errorf("root wrote %d ROUND_BATCH frames, want %d", got, batches*shards)
	}
	if got := agg.Down[FrameVerdictBatch]; got != batches*k {
		t.Errorf("aggregators wrote %d VERDICT_BATCH frames, want %d (one per player per batch)", got, batches*k)
	}
	if got := root.Up[FrameAggSum]; got != batches*shards {
		t.Errorf("root read %d AGG_SUM frames, want %d", got, batches*shards)
	}

	// The O(aggregators) statement itself: the root's downstream traffic
	// must not move when the player count doubles.
	root2, agg2 := countingRun(t, 2*k, shards, trials, batch, window)
	if root.DownTotal() != root2.DownTotal() {
		t.Errorf("root wrote %d downstream frames at k=%d but %d at k=%d; want identical at a fixed aggregator count",
			root.DownTotal(), k, root2.DownTotal(), 2*k)
	}
	if got := agg2.Down[FrameVerdictBatch]; got != batches*2*k {
		t.Errorf("aggregators wrote %d VERDICT_BATCH frames at k=%d, want %d", got, 2*k, batches*2*k)
	}
}

// TestCountingFlatStarBroadcastsPerPlayer pins the baseline the tree
// beats: on the flat star every batch costs the root one VERDICT_BATCH
// per player, and no aggregator frames exist.
func TestCountingFlatStarBroadcastsPerPlayer(t *testing.T) {
	const (
		k      = 12
		trials = 8
		batch  = 4
		window = 2
	)
	batches := uint64((trials + batch - 1) / batch)
	root, agg := countingRun(t, k, 1, trials, batch, window)
	if got := root.Down[FrameVerdictBatch]; got != batches*k {
		t.Errorf("flat root wrote %d VERDICT_BATCH frames, want %d", got, batches*k)
	}
	if got := root.Down[FrameAggVerdict]; got != 0 {
		t.Errorf("flat root wrote %d AGG_VERDICT frames, want 0", got)
	}
	if got := agg.DownTotal() + agg.UpTotal(); got != 0 {
		t.Errorf("flat star counted %d aggregator-tier frames, want 0", got)
	}
}

// TestFormatFrameCounts pins the netdemo rendering: frame-type order,
// zero entries skipped, totals up front, and a stable empty form.
func TestFormatFrameCounts(t *testing.T) {
	got := FormatFrameCounts(map[FrameType]uint64{
		FrameAggVerdict: 6,
		FrameRoundBatch: 6,
		FrameFinish:     3,
		FrameHello:      0,
	})
	want := "15 frames (FINISH:3 ROUND_BATCH:6 AGG_VERDICT:6)"
	if got != want {
		t.Errorf("FormatFrameCounts = %q, want %q", got, want)
	}
	if got := FormatFrameCounts(nil); got != "0 frames" {
		t.Errorf("FormatFrameCounts(nil) = %q, want \"0 frames\"", got)
	}
}

// TestFrameScannerReassembly feeds one encoded stream through the
// scanner in every split position: frame boundaries must be recovered
// regardless of how reads and writes chop the byte stream.
func TestFrameScannerReassembly(t *testing.T) {
	var buf []byte
	buf, err := AppendRoundBatch(buf, RoundBatch{Batch: 7, Seeds: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	buf, err = AppendAggVerdict(buf, AggVerdict{Batch: 7, Count: 3, Present: []uint32{2, 1}, Bits: []uint64{0x5}})
	if err != nil {
		t.Fatal(err)
	}
	buf = AppendFinish(buf)
	want := []FrameType{FrameRoundBatch, FrameAggVerdict, FrameFinish}
	for split := 0; split <= len(buf); split++ {
		var s frameScanner
		var got []FrameType
		emit := func(kind FrameType) { got = append(got, kind) }
		s.feed(buf[:split], emit)
		s.feed(buf[split:], emit)
		if len(got) != len(want) {
			t.Fatalf("split %d: scanned %d frames %v, want %v", split, len(got), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("split %d: frame %d = %v, want %v", split, i, got[i], want[i])
			}
		}
	}
}
