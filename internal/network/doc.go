// Package network runs the paper's simultaneous-message-passing model as a
// real message-passing system: a referee server and k player nodes
// exchanging length-prefixed frames over a Transport (in-memory pipes for
// tests and simulations, TCP loopback for the deployment-shaped demo).
//
// One round follows the model exactly:
//
//  1. Every player connects and sends HELLO with its player id.
//  2. The referee replies ROUND carrying the public-coin seed shared by
//     all players of the round.
//  3. Each player draws its q samples locally, evaluates its core.LocalRule
//     and sends VOTE with its message bits.
//  4. After collecting all k votes the referee applies its core.Referee
//     decision function and broadcasts VERDICT.
//
// Cluster wires the pieces together and implements core.Protocol, so a
// networked deployment can be dropped into the same experiment harness as
// the in-process simulator (that equivalence is itself covered by tests).
//
// # Wire validation
//
// The referee enforces the protocol, not just the frame format. A HELLO
// must announce between 1 and 64 message bits and a player id in [0, k);
// a second connection claiming an id already registered is a duplicate
// and rejected. A VOTE must carry the id of the connection it arrives on
// and a message that fits the bits announced at HELLO — a 1-bit rule
// cannot smuggle a wide message past the decision function. On the frame
// layer, a VERDICT payload byte other than 0x00 or 0x01 is a malformed
// frame, never a reject vote.
//
// # Straggler tolerance
//
// By default the referee is strict — all k votes are required, exactly
// the paper's model, and any failure aborts the round. WithMinVotes (or
// ClusterConfig.MinVotes) relaxes it to a quorum: the accept phase is
// bounded by one timeout, a round succeeds once at least MinVotes valid
// votes are in, and players that crashed, timed out, never connected or
// violated the protocol become stragglers instead of errors. Absent
// votes enter the decision per a core.AbsenteePolicy — counted as
// accepts, counted as rejects, or omitted — with the default deferring
// to the decision rule's own advice (a ThresholdRule counts absentees as
// accepts, since a silent sensor cannot push the rejection count over
// the threshold). Every round reports what happened in a RoundStats:
// votes received, stragglers, node-side connect retries and wall time.
//
// Node-side, PlayerNode retries a failed dial or HELLO with exponential
// backoff (SetRetryPolicy), so transient connection drops are survivable
// without referee involvement.
//
// # Fault injection
//
// FaultTransport decorates any Transport with deterministic, seeded
// faults applied per player id: dropped dial attempts, per-frame write
// delays, payload corruption of a chosen frame and connection crashes at
// a chosen round. It is the chaos harness for everything above — every
// injected fault must surface as a validated protocol error or a
// tolerated straggler, never as a wrong verdict — and its FaultStats
// report what was actually injected.
package network
