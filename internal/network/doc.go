// Package network runs the paper's simultaneous-message-passing model as a
// real message-passing system: a referee server and k player nodes
// exchanging length-prefixed frames over a Transport (in-memory pipes for
// tests and simulations, TCP loopback for the deployment-shaped demo).
//
// One round follows the model exactly:
//
//  1. Every player connects and sends HELLO with its player id.
//  2. The referee replies ROUND carrying the public-coin seed shared by
//     all players of the round.
//  3. Each player draws its q samples locally, evaluates its core.LocalRule
//     and sends VOTE with its message bits.
//  4. After collecting all k votes the referee applies its core.Referee
//     decision function and broadcasts VERDICT.
//
// Cluster wires the pieces together and implements core.Protocol, so a
// networked deployment can be dropped into the same experiment harness as
// the in-process simulator (that equivalence is itself covered by tests).
package network
