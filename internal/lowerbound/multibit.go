package lowerbound

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// MaxMessageBits caps the multi-bit strategy width; the exact evaluator
// keeps one spectral evaluator per message value, so 2^r of them.
const MaxMessageBits = 6

// MultiBitStrategy is a player strategy sending r bits: a map from the
// m-bit sample encoding to a message in [0, 2^r). It is the object of the
// paper's "longer answers" extension (Theorem 6.4): lower bounds decay as
// 2^{-Theta(r)}, equivalently a player's message may carry at most a
// 2^{Theta(r)} factor more distinguishing information.
type MultiBitStrategy struct {
	inst  Instance
	r     int
	table []uint8
}

// NewMultiBitStrategy validates and copies the message table (length 2^m,
// entries < 2^r).
func NewMultiBitStrategy(inst Instance, r int, table []uint8) (*MultiBitStrategy, error) {
	if r < 1 || r > MaxMessageBits {
		return nil, fmt.Errorf("lowerbound: message width %d outside [1,%d]", r, MaxMessageBits)
	}
	if len(table) != 1<<uint(inst.InputBits()) {
		return nil, fmt.Errorf("lowerbound: strategy table of %d entries, want %d", len(table), 1<<uint(inst.InputBits()))
	}
	limit := uint8(1) << uint(r)
	cp := make([]uint8, len(table))
	for i, v := range table {
		if v >= limit {
			return nil, fmt.Errorf("lowerbound: message %d at input %d exceeds %d bits", v, i, r)
		}
		cp[i] = v
	}
	return &MultiBitStrategy{inst: inst, r: r, table: cp}, nil
}

// RandomMultiBitStrategy draws each message value uniformly.
func RandomMultiBitStrategy(inst Instance, r int, rng *rand.Rand) (*MultiBitStrategy, error) {
	if r < 1 || r > MaxMessageBits {
		return nil, fmt.Errorf("lowerbound: message width %d outside [1,%d]", r, MaxMessageBits)
	}
	table := make([]uint8, 1<<uint(inst.InputBits()))
	for i := range table {
		table[i] = uint8(rng.Uint64N(1 << uint(r)))
	}
	return NewMultiBitStrategy(inst, r, table)
}

// QuantizedCollisionStrategy sends min(2^r - 1, #sign-agreeing vertex
// collisions): the natural multi-bit refinement of the collision vote,
// and the most informative simple strategy on the hard family.
func QuantizedCollisionStrategy(inst Instance, r int) (*MultiBitStrategy, error) {
	if r < 1 || r > MaxMessageBits {
		return nil, fmt.Errorf("lowerbound: message width %d outside [1,%d]", r, MaxMessageBits)
	}
	table := make([]uint8, 1<<uint(inst.InputBits()))
	cap64 := uint64(1)<<uint(r) - 1
	for idx := range table {
		samples, err := inst.SamplesFromInput(uint64(idx))
		if err != nil {
			return nil, err
		}
		var matches uint64
		for i := 0; i < len(samples); i++ {
			for j := i + 1; j < len(samples); j++ {
				if samples[i] == samples[j] {
					matches++
				}
			}
		}
		if matches > cap64 {
			matches = cap64
		}
		table[idx] = uint8(matches)
	}
	return NewMultiBitStrategy(inst, r, table)
}

// Bits returns r.
func (s *MultiBitStrategy) Bits() int { return s.r }

// MultiBitEvaluator computes, for every perturbation z, the full
// distribution of the r-bit message under nu_z^q versus under the uniform
// distribution, and the KL divergence between them — the multi-message
// generalization of the single-bit pipeline of Section 6.1. Each message
// value's probability shift is evaluated through its own Lemma 4.1
// spectral evaluator.
type MultiBitEvaluator struct {
	strategy *MultiBitStrategy
	cells    []*DiffEvaluator
	base     []float64 // mu-probabilities per message value
}

// NewMultiBitEvaluator precomputes the per-cell spectra.
func NewMultiBitEvaluator(s *MultiBitStrategy) (*MultiBitEvaluator, error) {
	if s == nil {
		return nil, fmt.Errorf("lowerbound: nil strategy")
	}
	values := 1 << uint(s.r)
	cells := make([]*DiffEvaluator, values)
	base := make([]float64, values)
	for c := 0; c < values; c++ {
		c := c
		indicator, err := boolfn.FromIndicator(s.inst.InputBits(), func(idx uint64) bool {
			return int(s.table[idx]) == c
		})
		if err != nil {
			return nil, err
		}
		e, err := NewDiffEvaluator(s.inst, indicator)
		if err != nil {
			return nil, err
		}
		cells[c] = e
		base[c] = e.Mu()
	}
	return &MultiBitEvaluator{strategy: s, cells: cells, base: base}, nil
}

// BaseDistribution returns the message distribution under the uniform
// input distribution.
func (e *MultiBitEvaluator) BaseDistribution() []float64 {
	cp := make([]float64, len(e.base))
	copy(cp, e.base)
	return cp
}

// MessageDistribution returns the message distribution under nu_z.
func (e *MultiBitEvaluator) MessageDistribution(z dist.Perturbation) ([]float64, error) {
	out := make([]float64, len(e.cells))
	for c, cell := range e.cells {
		d, err := cell.Diff(z)
		if err != nil {
			return nil, err
		}
		out[c] = e.base[c] + d
	}
	return out, nil
}

// MessageKL returns D(message under nu_z || message under uniform) in
// bits.
func (e *MultiBitEvaluator) MessageKL(z dist.Perturbation) (float64, error) {
	pz, err := e.MessageDistribution(z)
	if err != nil {
		return 0, err
	}
	var kl float64
	for c, p := range pz {
		if p <= 0 {
			continue
		}
		//lint:ignore dut/floateq zero-mass base cell: positive nu_z mass there is an exact support violation
		if e.base[c] == 0 {
			return 0, fmt.Errorf("lowerbound: message %d has nu_z mass %v but zero uniform mass", c, p)
		}
		kl += p * math.Log2(p/e.base[c])
	}
	return math.Max(kl, 0), nil
}

// ExpectedKL returns E_z[MessageKL] exactly by enumerating z
// (requires ell <= 4).
func (e *MultiBitEvaluator) ExpectedKL() (float64, error) {
	var acc float64
	count := 0
	err := dist.EnumeratePerturbations(e.strategy.inst.Ell, func(z dist.Perturbation) error {
		kl, kerr := e.MessageKL(z)
		if kerr != nil {
			return kerr
		}
		acc += kl
		count++
		return nil
	})
	if err != nil {
		return 0, err
	}
	return acc / float64(count), nil
}
