package lowerbound

import (
	"math"
	"testing"

	"github.com/distributed-uniformity/dut/internal/boolfn"
)

func TestGreedySecondMomentValidation(t *testing.T) {
	in := mustInstance(t, 2, 2, 0.5)
	wrong, _ := boolfn.New(3)
	if _, _, err := GreedySecondMomentAdversary(in, wrong, 5); err == nil {
		t.Error("arity mismatch accepted")
	}
	real, _ := boolfn.FromValues(in.InputBits(), make([]float64, 1<<uint(in.InputBits())))
	if _, _, err := GreedySecondMomentAdversary(in, real, 0); err == nil {
		t.Error("zero passes accepted")
	}
	nonBool, _ := boolfn.FromOracle(in.InputBits(), func(uint64) float64 { return 0.5 })
	if _, _, err := GreedySecondMomentAdversary(in, nonBool, 5); err == nil {
		t.Error("non-Boolean start accepted")
	}
}

func TestGreedySecondMomentImproves(t *testing.T) {
	in := mustInstance(t, 2, 3, 0.4)
	start, err := RandomStrategy(in, 0.5, testRand(121))
	if err != nil {
		t.Fatal(err)
	}
	startEval, err := NewDiffEvaluator(in, start)
	if err != nil {
		t.Fatal(err)
	}
	_, startSecond, err := startEval.ZMoments()
	if err != nil {
		t.Fatal(err)
	}
	g, claimed, err := GreedySecondMomentAdversary(in, start, 50)
	if err != nil {
		t.Fatal(err)
	}
	if claimed < startSecond-1e-15 {
		t.Errorf("greedy went backwards: %v -> %v", startSecond, claimed)
	}
	// The claimed objective matches an independent exact evaluation.
	eval, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := eval.ZMoments()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(second-claimed) > 1e-12 {
		t.Errorf("claimed %v, exact %v", claimed, second)
	}
	// It beats the heuristic detectors by a wide margin on this instance.
	sign, _ := SignAgreementDetector(in)
	se, _ := NewDiffEvaluator(in, sign)
	_, signSecond, err := se.ZMoments()
	if err != nil {
		t.Fatal(err)
	}
	if second < signSecond {
		t.Errorf("greedy %v below sign detector %v", second, signSecond)
	}
}

func TestGreedySecondMomentRespectsLemma42(t *testing.T) {
	// Even the adversarially-optimized strategy stays under the Lemma 4.2
	// bound (within its precondition).
	in := mustInstance(t, 3, 3, 0.15)
	if !Lemma42Precondition(in.N(), in.Q, in.Eps) {
		t.Fatal("grid instance lost its precondition")
	}
	start, err := RandomStrategy(in, 0.5, testRand(122))
	if err != nil {
		t.Fatal(err)
	}
	g, second, err := GreedySecondMomentAdversary(in, start, 30)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Lemma42Bound(in.N(), in.Q, in.Eps, eval.Var())
	if err != nil {
		t.Fatal(err)
	}
	if second > bound+1e-12 {
		t.Errorf("adversarial second moment %v exceeds the Lemma 4.2 bound %v", second, bound)
	}
	t.Logf("Lemma 4.2 adversarial tightness on (3,3,0.15): %.3f", second/bound)
}

func TestGreedySecondMomentLocalOptimum(t *testing.T) {
	// After convergence, no single flip improves: re-running from the
	// result must return the same value immediately.
	in := mustInstance(t, 2, 2, 0.6)
	start, err := RandomStrategy(in, 0.3, testRand(123))
	if err != nil {
		t.Fatal(err)
	}
	g1, v1, err := GreedySecondMomentAdversary(in, start, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, v2, err := GreedySecondMomentAdversary(in, g1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-12 {
		t.Errorf("not a local optimum: %v then %v", v1, v2)
	}
}
