package lowerbound

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func exactProtocolFor(t *testing.T, in Instance, k int, rule core.DecisionRule) *ExactProtocol {
	t.Helper()
	g, err := SignAgreementDetector(in)
	if err != nil {
		t.Fatal(err)
	}
	strategies := make([]boolfn.Func, k)
	for i := range strategies {
		strategies[i] = g
	}
	p, err := NewExactProtocol(in, strategies, rule)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewExactProtocolValidation(t *testing.T) {
	in := mustInstance(t, 2, 2, 0.5)
	g, _ := SignAgreementDetector(in)
	if _, err := NewExactProtocol(in, nil, core.ANDRule{}); err == nil {
		t.Error("zero players accepted")
	}
	if _, err := NewExactProtocol(in, []boolfn.Func{g}, nil); err == nil {
		t.Error("nil rule accepted")
	}
	nonBool, _ := boolfn.FromOracle(in.InputBits(), func(uint64) float64 { return 0.5 })
	if _, err := NewExactProtocol(in, []boolfn.Func{nonBool}, core.ANDRule{}); err == nil {
		t.Error("non-Boolean strategy accepted")
	}
	wrong, _ := boolfn.New(2)
	if _, err := NewExactProtocol(in, []boolfn.Func{wrong}, core.ANDRule{}); err == nil {
		t.Error("arity mismatch accepted")
	}
	big := make([]boolfn.Func, 21)
	for i := range big {
		big[i] = g
	}
	if _, err := NewExactProtocol(in, big, core.ANDRule{}); err == nil {
		t.Error("k=21 accepted")
	}
}

func TestExactAcceptanceMatchesMonteCarlo(t *testing.T) {
	// Oracle: simulate the same protocol with samples and compare.
	in := mustInstance(t, 2, 3, 0.6)
	const k = 5
	rule := core.ThresholdRule{T: 2}
	p := exactProtocolFor(t, in, k, rule)
	exactU, err := p.AcceptUniform()
	if err != nil {
		t.Fatal(err)
	}

	g, _ := SignAgreementDetector(in)
	// Monte-Carlo under uniform: draw q samples per player, evaluate G.
	est, err := stats.EstimateSuccess(40000, func(rng *rand.Rand) bool {
		bits := make([]bool, k)
		for i := 0; i < k; i++ {
			samples := make([]int, in.Q)
			for j := range samples {
				samples[j] = rng.IntN(in.N())
			}
			idx, ierr := in.InputFromSamples(samples)
			if ierr != nil {
				t.Error(ierr)
				return false
			}
			bits[i] = g.At(idx) == 1
		}
		ok, derr := rule.Decide(bits)
		if derr != nil {
			t.Error(derr)
			return false
		}
		return ok
	}, stats.EstimateOptions{Seed: 131})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P-exactU) > 0.01 {
		t.Errorf("exact accept(U) %v vs Monte-Carlo %v", exactU, est.P)
	}
}

func TestGapBelowDivergenceCeiling(t *testing.T) {
	// The executable Theorem 6.1 pipeline: for every rule, the exact
	// acceptance gap respects the information-theoretic ceiling.
	in := mustInstance(t, 3, 3, 0.3)
	for _, tt := range []struct {
		name string
		rule core.DecisionRule
		k    int
	}{
		{"and k=4", core.ANDRule{}, 4},
		{"and k=10", core.ANDRule{}, 10},
		{"majority k=9", core.MajorityRule{}, 9},
		{"threshold2 k=8", core.ThresholdRule{T: 2}, 8},
		{"or k=6", core.ORRule{}, 6},
	} {
		p := exactProtocolFor(t, in, tt.k, tt.rule)
		gap, ceiling, err := p.Gap()
		if err != nil {
			t.Fatal(err)
		}
		if gap > ceiling+1e-12 {
			t.Errorf("%s: gap %v exceeds ceiling %v", tt.name, gap, ceiling)
		}
		if gap < 0 {
			t.Errorf("%s: negative gap %v", tt.name, gap)
		}
	}
}

func TestGapGrowsWithPlayers(t *testing.T) {
	// More players extract more of the available divergence (majority
	// rule on an informative detector).
	in := mustInstance(t, 2, 4, 0.6)
	gapAt := func(k int) float64 {
		p := exactProtocolFor(t, in, k, core.MajorityRule{})
		gap, _, err := p.Gap()
		if err != nil {
			t.Fatal(err)
		}
		return gap
	}
	g1, g9 := gapAt(1), gapAt(9)
	if g9 <= g1 {
		t.Errorf("gap did not grow with players: k=1 %v, k=9 %v", g1, g9)
	}
}

func TestCeilingScalesWithSqrtPlayers(t *testing.T) {
	// ceiling = sqrt(c * k * E_z D): quadrupling k doubles it.
	in := mustInstance(t, 2, 3, 0.5)
	p4 := exactProtocolFor(t, in, 4, core.ANDRule{})
	p16 := exactProtocolFor(t, in, 16, core.ANDRule{})
	c4, err := p4.DivergenceCeiling()
	if err != nil {
		t.Fatal(err)
	}
	c16, err := p16.DivergenceCeiling()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c16/c4-2) > 1e-9 {
		t.Errorf("ceiling ratio %v, want 2", c16/c4)
	}
	if p4.Players() != 4 {
		t.Errorf("players = %d", p4.Players())
	}
}
