// Package lowerbound makes the lower-bound machinery of Meir, Minzer and
// Oshman (PODC 2019) executable: every lemma of Sections 3-6 has a function
// that evaluates its two sides on concrete instances, so the paper's
// inequalities can be verified exactly on small universes and by Monte
// Carlo on larger ones.
//
// The objects mirror the paper:
//
//   - Instance fixes (ell, q, eps): universe n = 2^(ell+1) viewed as two
//     copies of the cube {-1,1}^ell, with q samples per player. A player's
//     strategy is a Boolean function G on m = (ell+1)q input bits; bit
//     layout is sample-major, x-bits first then the sign bit (all under the
//     boolfn convention that a set bit means coordinate -1).
//   - NuZQ / NuZQFourier evaluate the product distribution nu_z^q at a
//     point directly and through the character expansion of Claim 3.1.
//   - DiffEvaluator computes nu_z(G) - mu(G) for every perturbation z
//     through the Fourier formula of Lemma 4.1 (with the per-x spectra
//     precomputed), plus exact z-moments by enumeration when ell <= 4.
//   - Evenly-covered combinatorics: X_S counts (Proposition 5.2), the
//     level counts a_r(x) and their moments (Lemma 5.5).
//   - Bounds: closed-form right-hand sides for Lemma 5.1, Lemma 4.2,
//     Lemma 4.3, Lemma 4.4, and the sample-complexity formulas of Theorems
//     1.1/6.1, 1.2/6.5, 1.3, 1.4, and 6.4.
//   - Divergence: the Section 6 information-theoretic pipeline — per-player
//     Bernoulli KL divergence, the Fact 6.3 chi-squared bound, the referee
//     requirement of inequality (10).
package lowerbound
