package lowerbound

import (
	"math"
	"testing"
)

func TestPlayerDivergenceBasics(t *testing.T) {
	d, err := PlayerDivergence(0.5, 0.5)
	if err != nil || d != 0 {
		t.Errorf("identical Bernoullis: %v, %v", d, err)
	}
	d, err = PlayerDivergence(0.6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("distinct Bernoullis: %v", d)
	}
}

func TestExpectedPlayerDivergenceBelowBudget(t *testing.T) {
	// The pipeline of Section 6.1: for any strategy (with the lemma
	// preconditions in force), the average divergence a single player can
	// generate is below the inequality (12) budget.
	for _, in := range lemmaGrid(t) {
		if !Lemma42Precondition(in.N(), in.Q, in.Eps) {
			continue
		}
		rng := testRand(uint64(in.Ell*17 + in.Q))
		for _, p := range []float64{0.5, 0.1} {
			g, err := RandomStrategy(in, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewDiffEvaluator(in, g)
			if err != nil {
				t.Fatal(err)
			}
			if e.Var() == 0 {
				continue // constant strategy: divergence trivially 0
			}
			div, err := ExpectedPlayerDivergence(e)
			if err != nil {
				t.Fatal(err)
			}
			budget, err := DivergenceUpperBound(in.N(), in.Q, in.Eps)
			if err != nil {
				t.Fatal(err)
			}
			if div > budget+1e-12 {
				t.Errorf("ell=%d q=%d eps=%v p=%v: divergence %v exceeds budget %v",
					in.Ell, in.Q, in.Eps, p, div, budget)
			}
		}
	}
}

func TestExpectedPlayerDivergenceDetector(t *testing.T) {
	in := mustInstance(t, 3, 3, 0.1)
	g, err := SignAgreementDetector(in)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	div, err := ExpectedPlayerDivergence(e)
	if err != nil {
		t.Fatal(err)
	}
	if div <= 0 {
		t.Errorf("informative detector has divergence %v", div)
	}
	budget, err := DivergenceUpperBound(in.N(), in.Q, in.Eps)
	if err != nil {
		t.Fatal(err)
	}
	if div > budget {
		t.Errorf("detector divergence %v exceeds budget %v", div, budget)
	}
	if _, err := ExpectedPlayerDivergence(nil); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestRefereeRequirement(t *testing.T) {
	// log2(1/delta)/(10k): delta = 1/2 with one player needs 1/10 bit.
	r, err := RefereeRequirement(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.1) > 1e-12 {
		t.Errorf("requirement = %v", r)
	}
	r2, err := RefereeRequirement(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2-0.01) > 1e-12 {
		t.Errorf("requirement k=10 = %v", r2)
	}
	if _, err := RefereeRequirement(0, 0.5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RefereeRequirement(1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := RefereeRequirement(1, 1); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestDivergenceUpperBoundValidation(t *testing.T) {
	if _, err := DivergenceUpperBound(1, 2, 0.5); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := DivergenceUpperBound(16, 0, 0.5); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := DivergenceUpperBound(16, 2, 2); err == nil {
		t.Error("eps=2 accepted")
	}
}

func TestMinimalQFromDivergenceInvertsBudget(t *testing.T) {
	const (
		n     = 1 << 16
		k     = 64
		eps   = 0.25
		delta = 1.0 / 3
	)
	q, err := MinimalQFromDivergence(n, k, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	// At the returned q the budget matches the requirement.
	need, _ := RefereeRequirement(k, delta)
	have, err := DivergenceUpperBound(n, int(math.Round(q)), eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(have-need)/need > 0.05 {
		t.Errorf("budget at q*=%v is %v, requirement %v", q, have, need)
	}
	// And it scales like sqrt(n/k)/eps^2 in the high-q regime.
	q4, err := MinimalQFromDivergence(n, 4*k, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := q / q4; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("4x players gave q ratio %v, want ~2", ratio)
	}
	if _, err := MinimalQFromDivergence(1, k, eps, delta); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := MinimalQFromDivergence(n, k, eps, 1); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestMinimalQMatchesTheorem61Shape(t *testing.T) {
	// The inversion and the closed-form Theorem 6.1 formula agree up to a
	// bounded constant across a parameter sweep.
	for _, k := range []int{16, 256, 4096} {
		for _, eps := range []float64{0.1, 0.5} {
			const n = 1 << 18
			q, err := MinimalQFromDivergence(n, k, eps, 1.0/3)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Theorem61Q(n, k, eps, 1)
			if err != nil {
				t.Fatal(err)
			}
			ratio := q / ref
			if ratio < 0.01 || ratio > 10 {
				t.Errorf("k=%d eps=%v: inversion %v vs formula %v (ratio %v)", k, eps, q, ref, ratio)
			}
		}
	}
}
