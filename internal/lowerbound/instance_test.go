package lowerbound

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"testing"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/dist"
)

func testRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xfeedface))
}

func mustInstance(t *testing.T, ell, q int, eps float64) Instance {
	t.Helper()
	in, err := NewInstance(ell, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	cases := []struct {
		name string
		ell  int
		q    int
		eps  float64
	}{
		{"negative ell", -1, 2, 0.5},
		{"zero q", 2, 0, 0.5},
		{"zero eps", 2, 2, 0},
		{"eps above one", 2, 2, 1.5},
		{"too many bits", 5, 4, 0.5},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewInstance(tt.ell, tt.q, tt.eps); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestInstanceSizes(t *testing.T) {
	in := mustInstance(t, 3, 4, 0.5)
	if in.N() != 16 || in.CubeSize() != 8 || in.InputBits() != 16 {
		t.Errorf("sizes: %d %d %d", in.N(), in.CubeSize(), in.InputBits())
	}
}

func TestMasksPartitionInputBits(t *testing.T) {
	for _, tt := range []struct{ ell, q int }{{1, 1}, {2, 3}, {3, 4}, {4, 2}} {
		in := mustInstance(t, tt.ell, tt.q, 0.5)
		x, s := in.XMask(), in.SMask()
		if x&s != 0 {
			t.Errorf("ell=%d q=%d: masks overlap", tt.ell, tt.q)
		}
		if x|s != uint64(1)<<uint(in.InputBits())-1 {
			t.Errorf("ell=%d q=%d: masks do not cover all bits", tt.ell, tt.q)
		}
		if bits.OnesCount64(s) != tt.q {
			t.Errorf("ell=%d q=%d: %d sign bits", tt.ell, tt.q, bits.OnesCount64(s))
		}
	}
}

func TestInputSampleRoundTrip(t *testing.T) {
	in := mustInstance(t, 2, 3, 0.5)
	rng := testRand(1)
	for trial := 0; trial < 100; trial++ {
		samples := make([]int, in.Q)
		for i := range samples {
			samples[i] = rng.IntN(in.N())
		}
		idx, err := in.InputFromSamples(samples)
		if err != nil {
			t.Fatal(err)
		}
		back, err := in.SamplesFromInput(idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range samples {
			if back[i] != samples[i] {
				t.Fatalf("round trip %v -> %d -> %v", samples, idx, back)
			}
		}
	}
	if _, err := in.InputFromSamples([]int{0}); err == nil {
		t.Error("wrong sample count accepted")
	}
	if _, err := in.InputFromSamples([]int{0, 16, 0}); err == nil {
		t.Error("out-of-universe sample accepted")
	}
	if _, err := in.SamplesFromInput(1 << 9); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestXIndicesMatchesSamples(t *testing.T) {
	in := mustInstance(t, 3, 2, 0.5)
	samples := []int{13, 6} // x=6 s=-1; x=3 s=+1
	idx, err := in.InputFromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	xs := in.XIndices(idx)
	if xs[0] != 6 || xs[1] != 3 {
		t.Errorf("XIndices = %v", xs)
	}
}

func TestNuZQMatchesDistPackage(t *testing.T) {
	// The product probability must agree with dist.HardInstance's
	// per-element probabilities.
	in := mustInstance(t, 2, 3, 0.7)
	h, err := in.Hard()
	if err != nil {
		t.Fatal(err)
	}
	rng := testRand(2)
	z, err := dist.RandomPerturbation(in.Ell, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.Perturbed(z)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		samples := make([]int, in.Q)
		for i := range samples {
			samples[i] = rng.IntN(in.N())
		}
		got, err := in.NuZQ(z, samples)
		if err != nil {
			t.Fatal(err)
		}
		want, err := d.TupleProb(samples)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("NuZQ(%v) = %v, dist product = %v", samples, got, want)
		}
	}
}

func TestClaim31FourierFormEqualsProduct(t *testing.T) {
	// Claim 3.1: the character expansion reproduces nu_z^q pointwise.
	for _, tt := range []struct {
		ell, q int
		eps    float64
	}{{1, 2, 0.5}, {2, 3, 0.3}, {3, 2, 0.9}, {2, 4, 0.1}} {
		in := mustInstance(t, tt.ell, tt.q, tt.eps)
		rng := testRand(uint64(tt.ell*10 + tt.q))
		z, err := dist.RandomPerturbation(in.Ell, rng)
		if err != nil {
			t.Fatal(err)
		}
		for idx := uint64(0); idx < uint64(1)<<uint(in.InputBits()); idx += 7 {
			samples, err := in.SamplesFromInput(idx)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := in.NuZQ(z, samples)
			if err != nil {
				t.Fatal(err)
			}
			fourier, err := in.NuZQFourier(z, samples)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(direct-fourier) > 1e-15 {
				t.Fatalf("ell=%d q=%d idx=%d: direct %v vs fourier %v", tt.ell, tt.q, idx, direct, fourier)
			}
		}
	}
}

func TestNuZQSumsToOne(t *testing.T) {
	in := mustInstance(t, 2, 3, 0.6)
	rng := testRand(3)
	z, err := dist.RandomPerturbation(in.Ell, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for idx := uint64(0); idx < uint64(1)<<uint(in.InputBits()); idx++ {
		samples, err := in.SamplesFromInput(idx)
		if err != nil {
			t.Fatal(err)
		}
		p, err := in.NuZQ(z, samples)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Errorf("nu_z^q sums to %v", sum)
	}
}

func TestMuGIsMean(t *testing.T) {
	in := mustInstance(t, 2, 2, 0.5)
	g, err := RandomStrategy(in, 0.3, testRand(4))
	if err != nil {
		t.Fatal(err)
	}
	mu, err := in.MuG(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-g.Mean()) > 1e-15 {
		t.Errorf("MuG = %v, mean = %v", mu, g.Mean())
	}
	wrong, _ := boolfn.New(3)
	if _, err := in.MuG(wrong); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := in.NuZDirect(wrong, dist.Perturbation{1, 1, 1, 1}); err == nil {
		t.Error("wrong arity accepted by NuZDirect")
	}
}

func TestMixtureOverZEqualsUniformOnG(t *testing.T) {
	// E_z[nu_z(G)] should equal... not mu(G) in general! Only for q where
	// no evenly-covered sets exist. For q = 1 there are none (a singleton
	// is never evenly covered), so E_z[nu_z(G)] = mu(G) exactly: one
	// sample is information-free.
	in := mustInstance(t, 2, 1, 0.8)
	g, err := RandomStrategy(in, 0.5, testRand(5))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := e.ZMoments()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean) > 1e-12 {
		t.Errorf("single-sample E_z[diff] = %v, want 0", mean)
	}
}
