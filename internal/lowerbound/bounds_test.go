package lowerbound

import (
	"math"
	"testing"
)

// lemmaGrid enumerates small instances on which the lemma preconditions
// hold and exhaustive z-enumeration is cheap.
func lemmaGrid(t *testing.T) []Instance {
	t.Helper()
	var grid []Instance
	for _, tt := range []struct {
		ell, q int
		eps    float64
	}{
		{2, 2, 0.1}, {2, 3, 0.1}, {2, 4, 0.15}, {3, 2, 0.1}, {3, 3, 0.15}, {3, 4, 0.2},
	} {
		grid = append(grid, mustInstance(t, tt.ell, tt.q, tt.eps))
	}
	return grid
}

func TestLemma51HoldsExhaustively(t *testing.T) {
	for _, in := range lemmaGrid(t) {
		if !Lemma51Precondition(in.N(), in.Q, in.Eps) {
			t.Fatalf("grid instance ell=%d q=%d eps=%v violates the Lemma 5.1 precondition", in.Ell, in.Q, in.Eps)
		}
		rng := testRand(uint64(in.Ell*100 + in.Q))
		for trial := 0; trial < 3; trial++ {
			p := []float64{0.5, 0.1, 0.02}[trial]
			g, err := RandomStrategy(in, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewDiffEvaluator(in, g)
			if err != nil {
				t.Fatal(err)
			}
			mean, _, err := e.ZMoments()
			if err != nil {
				t.Fatal(err)
			}
			bound, err := Lemma51Bound(in.N(), in.Q, in.Eps, e.Var())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mean) > bound+1e-12 {
				t.Errorf("ell=%d q=%d eps=%v p=%v: |E diff| = %v exceeds Lemma 5.1 bound %v",
					in.Ell, in.Q, in.Eps, p, math.Abs(mean), bound)
			}
		}
	}
}

func TestLemma42HoldsExhaustively(t *testing.T) {
	for _, in := range lemmaGrid(t) {
		if !Lemma42Precondition(in.N(), in.Q, in.Eps) {
			continue // the 20x constant shrinks the valid grid; skip others
		}
		rng := testRand(uint64(in.Ell*200 + in.Q))
		g, err := RandomStrategy(in, 0.3, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewDiffEvaluator(in, g)
		if err != nil {
			t.Fatal(err)
		}
		_, second, err := e.ZMoments()
		if err != nil {
			t.Fatal(err)
		}
		bound, err := Lemma42Bound(in.N(), in.Q, in.Eps, e.Var())
		if err != nil {
			t.Fatal(err)
		}
		if second > bound+1e-12 {
			t.Errorf("ell=%d q=%d eps=%v: E[diff^2] = %v exceeds Lemma 4.2 bound %v",
				in.Ell, in.Q, in.Eps, second, bound)
		}
	}
}

func TestLemma42HoldsForDetectors(t *testing.T) {
	// The most distinguishing strategies are the real stress test.
	for _, in := range lemmaGrid(t) {
		if !Lemma42Precondition(in.N(), in.Q, in.Eps) {
			continue
		}
		g, err := SignAgreementDetector(in)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewDiffEvaluator(in, g)
		if err != nil {
			t.Fatal(err)
		}
		_, second, err := e.ZMoments()
		if err != nil {
			t.Fatal(err)
		}
		bound, err := Lemma42Bound(in.N(), in.Q, in.Eps, e.Var())
		if err != nil {
			t.Fatal(err)
		}
		if second > bound+1e-12 {
			t.Errorf("ell=%d q=%d eps=%v: detector E[diff^2] = %v exceeds %v",
				in.Ell, in.Q, in.Eps, second, bound)
		}
	}
}

func TestLemma43HoldsForBiasedStrategies(t *testing.T) {
	// Lemma 4.3 targets highly-biased G; its precondition is harsh, so use
	// a tiny eps.
	in := mustInstance(t, 3, 3, 0.08)
	for _, m := range []int{1, 2} {
		if !Lemma43Precondition(in.N(), in.Q, m, in.Eps) {
			t.Fatalf("m=%d precondition fails on the chosen instance", m)
		}
		rng := testRand(uint64(300 + m))
		for _, p := range []float64{0.01, 0.05, 0.2} {
			g, err := RandomStrategy(in, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewDiffEvaluator(in, g)
			if err != nil {
				t.Fatal(err)
			}
			mean, _, err := e.ZMoments()
			if err != nil {
				t.Fatal(err)
			}
			bound, err := Lemma43Bound(in.N(), in.Q, m, in.Eps, e.Var())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mean) > bound+1e-12 {
				t.Errorf("m=%d p=%v: |E diff| = %v exceeds Lemma 4.3 bound %v", m, p, math.Abs(mean), bound)
			}
		}
	}
}

func TestLemma44HoldsWithUnitConstant(t *testing.T) {
	// The paper proves Lemma 4.4 for some constant C; on the verification
	// grid even C = 1 dominates (E8 reports the tightest observed C).
	in := mustInstance(t, 3, 3, 0.08)
	for _, m := range []int{1, 2} {
		rng := testRand(uint64(400 + m))
		for _, p := range []float64{0.03, 0.3} {
			g, err := RandomStrategy(in, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewDiffEvaluator(in, g)
			if err != nil {
				t.Fatal(err)
			}
			_, second, err := e.ZMoments()
			if err != nil {
				t.Fatal(err)
			}
			bound, err := Lemma44Bound(in.N(), in.Q, m, in.Eps, e.Var(), 1)
			if err != nil {
				t.Fatal(err)
			}
			if second > bound+1e-12 {
				t.Errorf("m=%d p=%v: E[diff^2] = %v exceeds Lemma 4.4 bound %v", m, p, second, bound)
			}
		}
	}
}

func TestBoundValidation(t *testing.T) {
	if _, err := Lemma51Bound(1, 2, 0.5, 0.1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Lemma42Bound(16, 0, 0.5, 0.1); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := Lemma43Bound(16, 2, 0, 0.5, 0.1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Lemma43Bound(16, 2, 1, 0.5, 0.5); err == nil {
		t.Error("var above 1/4 accepted")
	}
	if _, err := Lemma44Bound(16, 2, 1, 0.5, 0.1, 0); err == nil {
		t.Error("C=0 accepted")
	}
	if Lemma43Precondition(16, 2, 0, 0.5) {
		t.Error("m=0 precondition true")
	}
}

func TestBoundMonotonicity(t *testing.T) {
	// Bounds grow with q, eps and var.
	b1, _ := Lemma51Bound(1024, 10, 0.25, 0.1)
	b2, _ := Lemma51Bound(1024, 20, 0.25, 0.1)
	b3, _ := Lemma51Bound(1024, 10, 0.5, 0.1)
	b4, _ := Lemma51Bound(1024, 10, 0.25, 0.2)
	if b2 <= b1 || b3 <= b1 || b4 <= b1 {
		t.Errorf("Lemma 5.1 bound not monotone: %v %v %v %v", b1, b2, b3, b4)
	}
}

func TestTheoremBoundFormulas(t *testing.T) {
	// Theorem 6.1: sqrt(n/k) branch for k <= n, n/k branch beyond.
	q1, err := Theorem61Q(1<<20, 1<<10, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q1-4*32) > 1e-9 { // sqrt(2^10)/0.25
		t.Errorf("Theorem61Q = %v", q1)
	}
	q2, err := Theorem61Q(1<<10, 1<<20, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q2-4.0/1024) > 1e-9 { // (n/k)/eps^2 = 2^-10/0.25
		t.Errorf("Theorem61Q small branch = %v", q2)
	}
	// Theorem 6.4 equals Theorem 6.1 with k scaled by 2^r.
	q3, err := Theorem64Q(1<<20, 1<<10, 4, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	q4, _ := Theorem61Q(1<<20, 1<<14, 0.5, 1)
	if math.Abs(q3-q4) > 1e-9 {
		t.Errorf("Theorem64Q = %v, want %v", q3, q4)
	}
	// Theorem 6.5 decreases only logarithmically in k.
	a, _ := Theorem65Q(1<<20, 1<<4, 0.5, 1)
	b, _ := Theorem65Q(1<<20, 1<<8, 0.5, 1)
	if b >= a {
		t.Errorf("Theorem65Q not decreasing: %v -> %v", a, b)
	}
	if a/b > 8 {
		t.Errorf("Theorem65Q drops too fast: %v -> %v", a, b)
	}
	// Theorem 1.3 scales as 1/T.
	c1, _ := Theorem13Q(1<<20, 64, 1, 0.5, 1)
	c2, _ := Theorem13Q(1<<20, 64, 4, 0.5, 1)
	if math.Abs(c1/c2-4) > 1e-9 {
		t.Errorf("Theorem13Q T-scaling: %v vs %v", c1, c2)
	}
	// Theorem 1.4.
	k, _ := Theorem14K(1000, 10, 1)
	if math.Abs(k-10000) > 1e-9 {
		t.Errorf("Theorem14K = %v", k)
	}
	// Asymmetric bound recovers the symmetric case for unit rates.
	tau, err := AsymmetricTau(1<<20, []float64{1, 1, 1, 1}, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sym, _ := Theorem61Q(1<<20, 4, 0.5, 1)
	if math.Abs(tau-sym) > 1e-9 {
		t.Errorf("asymmetric tau %v vs symmetric q %v", tau, sym)
	}
}

func TestTheoremBoundValidation(t *testing.T) {
	if _, err := Theorem61Q(1, 1, 0.5, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Theorem61Q(16, 1, 0.5, 0); err == nil {
		t.Error("C=0 accepted")
	}
	if _, err := Theorem64Q(16, 1, 0, 0.5, 1); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := Theorem65Q(16, 1, 0.5, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Theorem13Q(16, 4, 0, 0.5, 1); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := Theorem14K(16, 0, 1); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := AsymmetricTau(16, nil, 0.5, 1); err == nil {
		t.Error("no rates accepted")
	}
	if _, err := AsymmetricTau(16, []float64{0, 0}, 0.5, 1); err == nil {
		t.Error("all-zero rates accepted")
	}
	if _, err := AsymmetricTau(16, []float64{1, -1}, 0.5, 1); err == nil {
		t.Error("negative rate accepted")
	}
}
