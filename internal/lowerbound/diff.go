package lowerbound

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// DiffEvaluator computes nu_z(G) - mu(G) through the Fourier formula of
// Lemma 4.1,
//
//	nu_z(G) - mu(G) = (2^q/n^q) sum_{S != empty} sum_x eps^{|S|}
//	                  prod_{j in S} z(x_j) * hat G_x(S),
//
// with the per-x slice spectra hat G_x precomputed once. Evaluating the
// difference for one z then costs O(2^{ell q} 2^q) instead of O(q 2^m) per
// z for the direct sum, which makes exhaustive z-enumeration feasible.
type DiffEvaluator struct {
	inst    Instance
	mu      float64
	varG    float64
	xs      [][]int     // xs[a] = cube indices of assignment a
	spectra [][]float64 // spectra[a][S] = hat G_x(S), S over [q]
	epsPow  []float64   // eps^r
}

// NewDiffEvaluator precomputes the slice spectra of the strategy G.
func NewDiffEvaluator(inst Instance, g boolfn.Func) (*DiffEvaluator, error) {
	if g.Vars() != inst.InputBits() {
		return nil, fmt.Errorf("lowerbound: strategy on %d bits, want %d", g.Vars(), inst.InputBits())
	}
	e := &DiffEvaluator{
		inst: inst,
		mu:   g.Mean(),
		varG: g.Variance(),
	}
	e.epsPow = make([]float64, inst.Q+1)
	e.epsPow[0] = 1
	for r := 1; r <= inst.Q; r++ {
		e.epsPow[r] = e.epsPow[r-1] * inst.Eps
	}
	xCount := 1 << uint(inst.Ell*inst.Q)
	e.xs = make([][]int, 0, xCount)
	e.spectra = make([][]float64, 0, xCount)
	err := g.Slices(inst.XMask(), func(assignment uint64, slice boolfn.Func) error {
		spec := boolfn.Transform(slice)
		e.xs = append(e.xs, inst.XIndices(assignment))
		e.spectra = append(e.spectra, spec.Coeffs())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Mu returns mu(G).
func (e *DiffEvaluator) Mu() float64 { return e.mu }

// Var returns var(G).
func (e *DiffEvaluator) Var() float64 { return e.varG }

// Diff returns nu_z(G) - mu(G) for one perturbation.
func (e *DiffEvaluator) Diff(z dist.Perturbation) (float64, error) {
	if len(z) != e.inst.CubeSize() {
		return 0, fmt.Errorf("lowerbound: perturbation of length %d, want %d", len(z), e.inst.CubeSize())
	}
	q := e.inst.Q
	size := 1 << uint(q)
	prod := make([]float64, size)
	prod[0] = 1
	var acc float64
	for a, spec := range e.spectra {
		xs := e.xs[a]
		// prod[S] = prod_{j in S} z(x_j), built by subset DP over the
		// lowest set bit.
		for set := 1; set < size; set++ {
			low := set & (-set)
			j := bits.TrailingZeros(uint(low))
			prod[set] = prod[set^low] * float64(z[xs[j]])
		}
		for set := 1; set < size; set++ {
			c := spec[set]
			//lint:ignore dut/floateq spec coefficients are exact small integers stored as float
			if c == 0 {
				continue
			}
			acc += e.epsPow[bits.OnesCount(uint(set))] * prod[set] * c
		}
	}
	// (2^q / n^q) = 2^{-ell q} = 1/len(spectra): the sum over x is an
	// average over x-assignments.
	return acc / float64(len(e.spectra)), nil
}

// ZMoments returns the exact first and second moments of nu_z(G) - mu(G)
// over a uniformly random z, by exhaustive enumeration (requires ell <= 4).
func (e *DiffEvaluator) ZMoments() (mean, second float64, err error) {
	err = dist.EnumeratePerturbations(e.inst.Ell, func(z dist.Perturbation) error {
		d, derr := e.Diff(z)
		if derr != nil {
			return derr
		}
		mean += d
		second += d * d
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	total := math.Pow(2, float64(e.inst.CubeSize()))
	return mean / total, second / total, nil
}

// MaxAbsDiff returns max_z |nu_z(G) - mu(G)| over all z by enumeration
// (requires ell <= 4).
func (e *DiffEvaluator) MaxAbsDiff() (float64, error) {
	var m float64
	err := dist.EnumeratePerturbations(e.inst.Ell, func(z dist.Perturbation) error {
		d, derr := e.Diff(z)
		if derr != nil {
			return derr
		}
		if a := math.Abs(d); a > m {
			m = a
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return m, nil
}

// ExpectedDiffEvenCover returns E_z[nu_z(G)] - mu(G) through equation (3)
// of the paper: only evenly-covered (x, S) pairs survive the expectation
// over z,
//
//	E_z[nu_z(G)] - mu(G) = (2^q/n^q) sum_{S != empty} sum_{x in X_S}
//	                        eps^{|S|} hat G_x(S).
//
// Unlike ZMoments it never touches z, so it works for any ell.
func (e *DiffEvaluator) ExpectedDiffEvenCover() float64 {
	q := e.inst.Q
	size := 1 << uint(q)
	var acc float64
	for a, spec := range e.spectra {
		xs := e.xs[a]
		for set := 1; set < size; set++ {
			c := spec[set]
			//lint:ignore dut/floateq spec coefficients are exact small integers stored as float
			if c == 0 {
				continue
			}
			if !IsEvenlyCovered(xs, uint64(set)) {
				continue
			}
			acc += e.epsPow[bits.OnesCount(uint(set))] * c
		}
	}
	return acc / float64(len(e.spectra))
}

// ZMomentsSampled estimates the first and second moments of
// nu_z(G) - mu(G) by sampling perturbations uniformly. Unlike ZMoments it
// works for any ell; on instances where both run, the two agree within
// Monte-Carlo error (tested).
func (e *DiffEvaluator) ZMomentsSampled(trials int, rng *rand.Rand) (mean, second float64, err error) {
	if trials <= 0 {
		return 0, 0, fmt.Errorf("lowerbound: sampled moments with %d trials", trials)
	}
	if rng == nil {
		return 0, 0, fmt.Errorf("lowerbound: nil rng")
	}
	for t := 0; t < trials; t++ {
		z, zerr := dist.RandomPerturbation(e.inst.Ell, rng)
		if zerr != nil {
			return 0, 0, zerr
		}
		d, derr := e.Diff(z)
		if derr != nil {
			return 0, 0, derr
		}
		mean += d
		second += d * d
	}
	return mean / float64(trials), second / float64(trials), nil
}
