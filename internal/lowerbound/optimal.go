package lowerbound

import (
	"fmt"

	"github.com/distributed-uniformity/dut/internal/boolfn"
)

// The first-moment difference E_z[nu_z(G)] - mu(G) is LINEAR in G's truth
// table:
//
//	E_z[nu_z(G)] - mu(G) = sum_inputs G(input) * w(input),
//	w(input) = E_z[nu_z^q(input)] - 1/n^q,
//
// so the strategy maximizing it over all 2^(2^m) Boolean strategies is
// simply the indicator of {w > 0} — computable exactly without search.
// This gives the exact extremal value of the Lemma 5.1 left-hand side on
// an instance, i.e. the lemma's true tightness against the best possible
// player, not merely against heuristic detectors.

// MixtureProb returns E_z[nu_z^q(samples)] exactly. Grouping the samples
// by cube vertex, the independence of z's coordinates factorizes the
// expectation:
//
//	E_z prod_i (1 + s_i z(x_i) eps)/n
//	  = n^{-q} prod_{vertices v} ( (1/2) prod_{i: x_i=v} (1 + s_i eps)
//	                             + (1/2) prod_{i: x_i=v} (1 - s_i eps) ).
func (in Instance) MixtureProb(samples []int) (float64, error) {
	if len(samples) != in.Q {
		return 0, fmt.Errorf("lowerbound: %d samples, want q=%d", len(samples), in.Q)
	}
	type group struct {
		plus  float64 // prod over the vertex's samples of (1 + s_i eps)
		minus float64 // prod of (1 - s_i eps)
	}
	groups := make(map[int]*group, in.Q)
	for _, s := range samples {
		if s < 0 || s >= in.N() {
			return 0, fmt.Errorf("lowerbound: sample %d outside universe of size %d", s, in.N())
		}
		x := s >> 1
		sign := 1.0
		if s&1 == 1 {
			sign = -1
		}
		g, ok := groups[x]
		if !ok {
			g = &group{plus: 1, minus: 1}
			groups[x] = g
		}
		g.plus *= 1 + sign*in.Eps
		g.minus *= 1 - sign*in.Eps
	}
	prob := 1.0
	for _, g := range groups {
		prob *= (g.plus + g.minus) / 2
	}
	nPow := 1.0
	for i := 0; i < in.Q; i++ {
		nPow *= float64(in.N())
	}
	return prob / nPow, nil
}

// OptimalFirstMomentStrategy returns the strategy G* maximizing
// E_z[nu_z(G)] - mu(G) over ALL Boolean strategies, together with the
// exact value it attains. The minimizing strategy is its complement with
// value -maxDiff, so maxDiff is also the extremal |E_z diff|.
func OptimalFirstMomentStrategy(in Instance) (boolfn.Func, float64, error) {
	size := uint64(1) << uint(in.InputBits())
	uniformProb := 1.0
	for i := 0; i < in.Q; i++ {
		uniformProb /= float64(in.N())
	}
	vals := make([]float64, size)
	var maxDiff float64
	for idx := uint64(0); idx < size; idx++ {
		samples, err := in.SamplesFromInput(idx)
		if err != nil {
			return boolfn.Func{}, 0, err
		}
		mix, err := in.MixtureProb(samples)
		if err != nil {
			return boolfn.Func{}, 0, err
		}
		if w := mix - uniformProb; w > 0 {
			vals[idx] = 1
			maxDiff += w
		}
	}
	g, err := boolfn.FromValues(in.InputBits(), vals)
	if err != nil {
		return boolfn.Func{}, 0, err
	}
	return g, maxDiff, nil
}
