package lowerbound

import (
	"math"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
)

func TestMixtureProbMatchesEnumeration(t *testing.T) {
	// Oracle: average nu_z^q(input) over all z by exhaustive enumeration.
	for _, tt := range []struct {
		ell, q int
		eps    float64
	}{{1, 2, 0.5}, {2, 3, 0.3}, {3, 2, 0.8}} {
		in := mustInstance(t, tt.ell, tt.q, tt.eps)
		for idx := uint64(0); idx < uint64(1)<<uint(in.InputBits()); idx += 3 {
			samples, err := in.SamplesFromInput(idx)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			count := 0
			err = dist.EnumeratePerturbations(in.Ell, func(z dist.Perturbation) error {
				p, perr := in.NuZQ(z, samples)
				if perr != nil {
					return perr
				}
				sum += p
				count++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			want := sum / float64(count)
			got, err := in.MixtureProb(samples)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-15 {
				t.Fatalf("ell=%d q=%d idx=%d: closed form %v, enumeration %v", tt.ell, tt.q, idx, got, want)
			}
		}
	}
}

func TestMixtureProbValidation(t *testing.T) {
	in := mustInstance(t, 2, 2, 0.5)
	if _, err := in.MixtureProb([]int{0}); err == nil {
		t.Error("wrong sample count accepted")
	}
	if _, err := in.MixtureProb([]int{0, 99}); err == nil {
		t.Error("out-of-universe sample accepted")
	}
}

func TestMixtureProbSingleSampleIsUniform(t *testing.T) {
	// q=1: every input has mixture probability exactly 1/n — the
	// information-freeness of one sample, in closed form.
	in := mustInstance(t, 2, 1, 0.9)
	want := 1.0 / float64(in.N())
	for idx := uint64(0); idx < uint64(1)<<uint(in.InputBits()); idx++ {
		samples, err := in.SamplesFromInput(idx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := in.MixtureProb(samples)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-18 {
			t.Fatalf("q=1 mixture prob %v, want %v", got, want)
		}
	}
}

func TestOptimalFirstMomentStrategy(t *testing.T) {
	in := mustInstance(t, 2, 3, 0.4)
	gStar, maxDiff, err := OptimalFirstMomentStrategy(in)
	if err != nil {
		t.Fatal(err)
	}
	if maxDiff <= 0 {
		t.Fatalf("optimal diff %v, want positive at q >= 2", maxDiff)
	}
	// The claimed value matches the evaluator's exact expectation.
	e, err := NewDiffEvaluator(in, gStar)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := e.ZMoments()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-maxDiff) > 1e-14 {
		t.Fatalf("strategy attains %v, claimed %v", mean, maxDiff)
	}
	// Optimality: it dominates the heuristic detectors and random
	// strategies.
	for name, mk := range map[string]func() (float64, error){
		"sign detector": func() (float64, error) {
			g, err := SignAgreementDetector(in)
			if err != nil {
				return 0, err
			}
			ev, err := NewDiffEvaluator(in, g)
			if err != nil {
				return 0, err
			}
			m, _, err := ev.ZMoments()
			return m, err
		},
		"random": func() (float64, error) {
			g, err := RandomStrategy(in, 0.5, testRand(111))
			if err != nil {
				return 0, err
			}
			ev, err := NewDiffEvaluator(in, g)
			if err != nil {
				return 0, err
			}
			m, _, err := ev.ZMoments()
			return m, err
		},
	} {
		other, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(other) > maxDiff+1e-14 {
			t.Errorf("%s attains |diff| %v above the claimed optimum %v", name, math.Abs(other), maxDiff)
		}
	}
	// And the Lemma 5.1 bound dominates even the optimum (when its
	// precondition holds).
	if Lemma51Precondition(in.N(), in.Q, in.Eps) {
		bound, err := Lemma51Bound(in.N(), in.Q, in.Eps, e.Var())
		if err != nil {
			t.Fatal(err)
		}
		if maxDiff > bound+1e-12 {
			t.Errorf("optimal diff %v exceeds the Lemma 5.1 bound %v", maxDiff, bound)
		}
	}
}

func TestOptimalStrategyExhaustiveCrossCheck(t *testing.T) {
	// On the tiniest instance, brute-force all 2^16 strategies and confirm
	// nothing beats the closed-form optimum.
	in := mustInstance(t, 1, 2, 0.7)
	_, maxDiff, err := OptimalFirstMomentStrategy(in)
	if err != nil {
		t.Fatal(err)
	}
	size := 1 << uint(in.InputBits()) // 16 inputs
	// Precompute per-input weights via MixtureProb.
	weights := make([]float64, size)
	uniformProb := 1.0 / float64(in.N()*in.N())
	for idx := 0; idx < size; idx++ {
		samples, err := in.SamplesFromInput(uint64(idx))
		if err != nil {
			t.Fatal(err)
		}
		mix, err := in.MixtureProb(samples)
		if err != nil {
			t.Fatal(err)
		}
		weights[idx] = mix - uniformProb
	}
	best := 0.0
	for mask := uint64(0); mask < 1<<uint(size); mask++ {
		var v float64
		for idx := 0; idx < size; idx++ {
			if mask&(1<<uint(idx)) != 0 {
				v += weights[idx]
			}
		}
		if v > best {
			best = v
		}
	}
	if math.Abs(best-maxDiff) > 1e-15 {
		t.Fatalf("brute force found %v, closed form %v", best, maxDiff)
	}
}

func TestOptimalStrategyGrowsWithEps(t *testing.T) {
	prev := 0.0
	for _, eps := range []float64{0.1, 0.3, 0.6, 0.9} {
		in := mustInstance(t, 2, 3, eps)
		_, maxDiff, err := OptimalFirstMomentStrategy(in)
		if err != nil {
			t.Fatal(err)
		}
		if maxDiff <= prev {
			t.Errorf("eps=%v: optimal diff %v did not grow from %v", eps, maxDiff, prev)
		}
		prev = maxDiff
	}
}
