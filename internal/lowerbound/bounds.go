package lowerbound

import (
	"fmt"
	"math"
)

// Lemma51Bound evaluates the right-hand side of Lemma 5.1:
// |E_z[nu_z(G)] - mu(G)| <= (4 q eps^2 / sqrt(n)) sqrt(var(G)),
// valid when q <= sqrt(n)/(4 eps^2).
func Lemma51Bound(n, q int, eps, varG float64) (float64, error) {
	if err := checkBoundArgs(n, q, eps, varG); err != nil {
		return 0, err
	}
	return 4 * float64(q) * eps * eps / math.Sqrt(float64(n)) * math.Sqrt(varG), nil
}

// Lemma51Precondition reports whether q <= sqrt(n)/(4 eps^2).
func Lemma51Precondition(n, q int, eps float64) bool {
	return float64(q) <= math.Sqrt(float64(n))/(4*eps*eps)
}

// Lemma42Bound evaluates the right-hand side of Lemma 4.2:
// E_z[|nu_z(G) - mu(G)|^2] <= (20 q^2 eps^4 / n + q eps^2 / n) var(G),
// valid when q <= sqrt(n)/(20 eps^2).
func Lemma42Bound(n, q int, eps, varG float64) (float64, error) {
	if err := checkBoundArgs(n, q, eps, varG); err != nil {
		return 0, err
	}
	qf, nf := float64(q), float64(n)
	return (20*qf*qf*eps*eps*eps*eps/nf + qf*eps*eps/nf) * varG, nil
}

// Lemma42Precondition reports whether q <= sqrt(n)/(20 eps^2).
func Lemma42Precondition(n, q int, eps float64) bool {
	return float64(q) <= math.Sqrt(float64(n))/(20*eps*eps)
}

// Lemma43Bound evaluates the right-hand side of Lemma 4.3 for the level
// parameter m:
//
//	|E_z[nu_z(G)] - mu(G)| <= (q/sqrt(n) + (q/sqrt(n))^{1/(2m+2)})
//	                          * 40 m^2 eps^2 * var(G)^{(2m+1)/(2m+2)}.
func Lemma43Bound(n, q, m int, eps, varG float64) (float64, error) {
	if err := checkBoundArgs(n, q, eps, varG); err != nil {
		return 0, err
	}
	if m < 1 {
		return 0, fmt.Errorf("lowerbound: Lemma 4.3 with m=%d", m)
	}
	ratio := float64(q) / math.Sqrt(float64(n))
	mf := float64(m)
	exp := 1 / (2*mf + 2)
	return (ratio + math.Pow(ratio, exp)) * 40 * mf * mf * eps * eps *
		math.Pow(varG, (2*mf+1)/(2*mf+2)), nil
}

// Lemma43Precondition reports whether
// q <= min(sqrt(n)/(40 m^2 eps^2), sqrt(n)/(40 m^2 eps^2)^{m+1}).
func Lemma43Precondition(n, q, m int, eps float64) bool {
	if m < 1 {
		return false
	}
	mf := float64(m)
	s := 40 * mf * mf * eps * eps
	sq := math.Sqrt(float64(n))
	return float64(q) <= math.Min(sq/s, sq/math.Pow(s, mf+1))
}

// Lemma44Bound evaluates the right-hand side of Lemma 4.4 with an explicit
// constant C:
//
//	E_z[|nu_z(G)-mu(G)|^2] <= (2 eps^2 q / n) var(G)
//	  + C (q/sqrt(n) + (q/sqrt(n))^{1/(m+1)}) m^2 eps^2 var(G)^{2-1/(m+1)}.
//
// The paper proves existence of some C > 0; the E8 experiment reports the
// smallest C observed to dominate on the verification grid.
func Lemma44Bound(n, q, m int, eps, varG, c float64) (float64, error) {
	if err := checkBoundArgs(n, q, eps, varG); err != nil {
		return 0, err
	}
	if m < 1 {
		return 0, fmt.Errorf("lowerbound: Lemma 4.4 with m=%d", m)
	}
	if c <= 0 {
		return 0, fmt.Errorf("lowerbound: Lemma 4.4 with C=%v", c)
	}
	qf, nf, mf := float64(q), float64(n), float64(m)
	ratio := qf / math.Sqrt(nf)
	first := 2 * eps * eps * qf / nf * varG
	second := c * (ratio + math.Pow(ratio, 1/(mf+1))) * mf * mf * eps * eps *
		math.Pow(varG, 2-1/(mf+1))
	return first + second, nil
}

func checkBoundArgs(n, q int, eps, varG float64) error {
	if n < 2 {
		return fmt.Errorf("lowerbound: bound with n=%d", n)
	}
	if q < 1 {
		return fmt.Errorf("lowerbound: bound with q=%d", q)
	}
	if eps <= 0 || eps > 1 {
		return fmt.Errorf("lowerbound: bound with eps=%v", eps)
	}
	if varG < 0 || varG > 0.25+1e-12 {
		return fmt.Errorf("lowerbound: bound with var=%v outside [0, 1/4]", varG)
	}
	return nil
}

// Theorem61Q evaluates the Theorem 6.1 lower bound on the per-player
// sample complexity with an explicit constant:
// q >= (C/eps^2) min(sqrt(n/k), n/k).
func Theorem61Q(n, k int, eps, c float64) (float64, error) {
	if n < 2 || k < 1 {
		return 0, fmt.Errorf("lowerbound: Theorem 6.1 with n=%d k=%d", n, k)
	}
	if eps <= 0 || eps > 1 || c <= 0 {
		return 0, fmt.Errorf("lowerbound: Theorem 6.1 with eps=%v C=%v", eps, c)
	}
	ratio := float64(n) / float64(k)
	return c / (eps * eps) * math.Min(math.Sqrt(ratio), ratio), nil
}

// Theorem64Q evaluates the Theorem 6.4 lower bound for r-bit messages:
// q >= (C/eps^2) min(sqrt(n/(2^r k)), n/(2^r k)).
func Theorem64Q(n, k, r int, eps, c float64) (float64, error) {
	if r < 1 || r > 62 {
		return 0, fmt.Errorf("lowerbound: Theorem 6.4 with r=%d", r)
	}
	keff := k << uint(r)
	return Theorem61Q(n, keff, eps, c)
}

// Theorem65Q evaluates the Theorem 6.5 (AND rule) lower bound:
// q = Omega(sqrt(n)/(log^2(k) eps^2)), stated with an explicit constant.
// Valid in the regime k <= 2^{c'/eps}.
func Theorem65Q(n, k int, eps, c float64) (float64, error) {
	if n < 2 || k < 2 {
		return 0, fmt.Errorf("lowerbound: Theorem 6.5 with n=%d k=%d", n, k)
	}
	if eps <= 0 || eps > 1 || c <= 0 {
		return 0, fmt.Errorf("lowerbound: Theorem 6.5 with eps=%v C=%v", eps, c)
	}
	lg := math.Log2(float64(k))
	if lg < 1 {
		lg = 1
	}
	return c * math.Sqrt(float64(n)) / (lg * lg * eps * eps), nil
}

// Theorem13Q evaluates the Theorem 1.3 (T-threshold rule) lower bound:
// q = Omega(sqrt(n)/(T log^2(k/eps) eps^2)), valid for
// T < c'/(eps^2 log^2(k/eps)) and k <= sqrt(n).
func Theorem13Q(n, k, t int, eps, c float64) (float64, error) {
	if n < 2 || k < 2 || t < 1 {
		return 0, fmt.Errorf("lowerbound: Theorem 1.3 with n=%d k=%d T=%d", n, k, t)
	}
	if eps <= 0 || eps > 1 || c <= 0 {
		return 0, fmt.Errorf("lowerbound: Theorem 1.3 with eps=%v C=%v", eps, c)
	}
	lg := math.Log2(float64(k) / eps)
	if lg < 1 {
		lg = 1
	}
	return c * math.Sqrt(float64(n)) / (float64(t) * lg * lg * eps * eps), nil
}

// Theorem14K evaluates the Theorem 1.4 lower bound on the number of
// players needed to learn the input distribution to constant accuracy with
// q queries each: k = Omega(n^2/q^2).
func Theorem14K(n, q int, c float64) (float64, error) {
	if n < 2 || q < 1 || c <= 0 {
		return 0, fmt.Errorf("lowerbound: Theorem 1.4 with n=%d q=%d C=%v", n, q, c)
	}
	return c * float64(n) * float64(n) / (float64(q) * float64(q)), nil
}

// AsymmetricTau evaluates the Section 6.2 lower bound on the common
// deadline tau when player i samples at rate rates[i]:
// tau = Omega(sqrt(n)/(eps^2 ||rates||_2)).
func AsymmetricTau(n int, rates []float64, eps, c float64) (float64, error) {
	if n < 2 || len(rates) == 0 {
		return 0, fmt.Errorf("lowerbound: asymmetric bound with n=%d and %d rates", n, len(rates))
	}
	if eps <= 0 || eps > 1 || c <= 0 {
		return 0, fmt.Errorf("lowerbound: asymmetric bound with eps=%v C=%v", eps, c)
	}
	var norm2 float64
	for i, r := range rates {
		if r < 0 {
			return 0, fmt.Errorf("lowerbound: negative rate %v at %d", r, i)
		}
		norm2 += r * r
	}
	//lint:ignore dut/floateq a sum of squares is exactly 0 iff every rate is exactly 0
	if norm2 == 0 {
		return 0, fmt.Errorf("lowerbound: all rates zero")
	}
	return c * math.Sqrt(float64(n)) / (eps * eps * math.Sqrt(norm2)), nil
}
