package lowerbound

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/stats"
)

// IsEvenlyCovered reports whether the multiset {x_j : j in S} covers every
// cube vertex an even number of times — the condition under which the term
// survives the expectation over z (Section 5).
func IsEvenlyCovered(xs []int, set uint64) bool {
	// Track parity per vertex; a small map suffices because |S| <= q.
	parity := make(map[int]bool, bits.OnesCount64(set))
	for j, x := range xs {
		if set&(1<<uint(j)) != 0 {
			parity[x] = !parity[x]
		}
	}
	for _, odd := range parity {
		if odd {
			return false
		}
	}
	return true
}

// CountEvenlyCovered computes |X_S| exactly for an instance and a subset S
// of [q], by enumerating all (2^ell)^q assignments of cube vertices. It is
// exponential and intended for the small instances on which Proposition
// 5.2 is verified.
func CountEvenlyCovered(ell, q int, set uint64) (int64, error) {
	if ell < 0 || q < 1 {
		return 0, fmt.Errorf("lowerbound: counting with ell=%d q=%d", ell, q)
	}
	if q < 64 && set >= uint64(1)<<uint(q) {
		return 0, fmt.Errorf("lowerbound: subset %#x out of range for q=%d", set, q)
	}
	if ell*q > 26 {
		return 0, fmt.Errorf("lowerbound: enumeration over %d bits is too large", ell*q)
	}
	cube := 1 << uint(ell)
	total := int64(1)
	for i := 0; i < q; i++ {
		total *= int64(cube)
	}
	xs := make([]int, q)
	var count int64
	for a := int64(0); a < total; a++ {
		v := a
		for i := 0; i < q; i++ {
			xs[i] = int(v % int64(cube))
			v /= int64(cube)
		}
		if IsEvenlyCovered(xs, set) {
			count++
		}
	}
	return count, nil
}

// XSBound evaluates the Proposition 5.2 upper bound on |X_S|:
// (|S|-1)!! (n/2)^{q - |S|/2} for even |S|, and 0 for odd |S|.
func XSBound(ell, q, setSize int) (float64, error) {
	if ell < 0 || q < 1 || setSize < 0 || setSize > q {
		return 0, fmt.Errorf("lowerbound: XS bound with ell=%d q=%d |S|=%d", ell, q, setSize)
	}
	if setSize%2 == 1 {
		return 0, nil
	}
	df, err := stats.DoubleFactorial(setSize - 1)
	if err != nil {
		return 0, err
	}
	half := float64(int64(1) << uint(ell)) // n/2 = 2^ell
	return df * math.Pow(half, float64(q)-float64(setSize)/2), nil
}

// AR computes a_r(x) = |{S : |S| = 2r, {x_j}_S evenly covered}| by
// enumerating the C(q, 2r) subsets.
func AR(xs []int, r int) (int64, error) {
	q := len(xs)
	if r < 0 || 2*r > q {
		return 0, nil
	}
	if q > 30 {
		return 0, fmt.Errorf("lowerbound: a_r over %d samples is too large", q)
	}
	var count int64
	for set := uint64(0); set < uint64(1)<<uint(q); set++ {
		if bits.OnesCount64(set) != 2*r {
			continue
		}
		if IsEvenlyCovered(xs, set) {
			count++
		}
	}
	return count, nil
}

// ARMomentExact computes E_x[a_r(x)^m] exactly by enumerating all cube
// assignments (small instances only).
func ARMomentExact(ell, q, r, m int) (float64, error) {
	if ell < 0 || q < 1 || m < 1 {
		return 0, fmt.Errorf("lowerbound: moment with ell=%d q=%d m=%d", ell, q, m)
	}
	if ell*q > 24 {
		return 0, fmt.Errorf("lowerbound: enumeration over %d bits is too large", ell*q)
	}
	cube := 1 << uint(ell)
	total := int64(1)
	for i := 0; i < q; i++ {
		total *= int64(cube)
	}
	xs := make([]int, q)
	var acc float64
	for a := int64(0); a < total; a++ {
		v := a
		for i := 0; i < q; i++ {
			xs[i] = int(v % int64(cube))
			v /= int64(cube)
		}
		ar, err := AR(xs, r)
		if err != nil {
			return 0, err
		}
		acc += math.Pow(float64(ar), float64(m))
	}
	return acc / float64(total), nil
}

// ARMomentMonteCarlo estimates E_x[a_r(x)^m] by sampling x uniformly.
func ARMomentMonteCarlo(ell, q, r, m, trials int, rng *rand.Rand) (float64, error) {
	if ell < 0 || q < 1 || m < 1 || trials < 1 {
		return 0, fmt.Errorf("lowerbound: Monte-Carlo moment with ell=%d q=%d m=%d trials=%d", ell, q, m, trials)
	}
	cube := 1 << uint(ell)
	xs := make([]int, q)
	var acc float64
	for t := 0; t < trials; t++ {
		for i := range xs {
			xs[i] = rng.IntN(cube)
		}
		ar, err := AR(xs, r)
		if err != nil {
			return 0, err
		}
		acc += math.Pow(float64(ar), float64(m))
	}
	return acc / float64(trials), nil
}

// ARMomentBound evaluates the Lemma 5.5 upper bound on E_x[a_r(x)^m]:
//
//	(4m)^{2mr} (q / sqrt(n/2))^{2mr}   when q >= sqrt(n/2),
//	(4m)^{2mr} (q / sqrt(n/2))^{2r}    when q <  sqrt(n/2).
func ARMomentBound(ell, q, r, m int) (float64, error) {
	if ell < 0 || q < 1 || r < 0 || m < 1 {
		return 0, fmt.Errorf("lowerbound: moment bound with ell=%d q=%d r=%d m=%d", ell, q, r, m)
	}
	halfN := math.Pow(2, float64(ell)) // n/2
	ratio := float64(q) / math.Sqrt(halfN)
	base := math.Pow(4*float64(m), 2*float64(m)*float64(r))
	if ratio >= 1 {
		return base * math.Pow(ratio, 2*float64(m)*float64(r)), nil
	}
	return base * math.Pow(ratio, 2*float64(r)), nil
}

// ARMeanBound evaluates the first-moment estimate used in Lemma 5.1:
// E_x[a_r(x)] <= (q^2/n)^r.
func ARMeanBound(ell, q, r int) (float64, error) {
	if ell < 0 || q < 1 || r < 0 {
		return 0, fmt.Errorf("lowerbound: mean bound with ell=%d q=%d r=%d", ell, q, r)
	}
	n := math.Pow(2, float64(ell+1))
	return math.Pow(float64(q)*float64(q)/n, float64(r)), nil
}
