package lowerbound

import (
	"fmt"
	"math"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/core"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// This file makes the whole Section 6.1 argument executable for concrete
// small protocols: given k player strategies and a referee rule, it
// computes the protocol's EXACT acceptance probabilities under the uniform
// distribution and averaged over the hard family, and compares their gap
// against the information-theoretic ceiling the paper derives from
// additivity (equation (9)) and Pinsker's inequality. No sampling anywhere.

// ExactProtocol is a fully-specified k-player single-bit protocol on one
// hard instance.
type ExactProtocol struct {
	inst  Instance
	evals []*DiffEvaluator
	rule  core.DecisionRule
}

// NewExactProtocol validates the strategies (one per player, each on the
// instance's input bits, {0,1}-valued) and precomputes their spectral
// evaluators.
func NewExactProtocol(in Instance, strategies []boolfn.Func, rule core.DecisionRule) (*ExactProtocol, error) {
	if len(strategies) == 0 {
		return nil, fmt.Errorf("lowerbound: protocol with zero players")
	}
	if len(strategies) > 20 {
		return nil, fmt.Errorf("lowerbound: exact analysis of %d players is too large (2^k joint states)", len(strategies))
	}
	if rule == nil {
		return nil, fmt.Errorf("lowerbound: nil decision rule")
	}
	evals := make([]*DiffEvaluator, len(strategies))
	for i, g := range strategies {
		if !g.IsBoolean(1e-12) {
			return nil, fmt.Errorf("lowerbound: player %d strategy is not Boolean", i)
		}
		e, err := NewDiffEvaluator(in, g)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: player %d: %w", i, err)
		}
		evals[i] = e
	}
	return &ExactProtocol{inst: in, evals: evals, rule: rule}, nil
}

// Players returns k.
func (p *ExactProtocol) Players() int { return len(p.evals) }

// acceptanceGivenBits computes Pr[referee accepts] when player i's bit is
// an independent Bernoulli(probs[i]).
func (p *ExactProtocol) acceptanceGivenBits(probs []float64) (float64, error) {
	k := len(probs)
	bits := make([]bool, k)
	var acc float64
	for mask := uint64(0); mask < 1<<uint(k); mask++ {
		prob := 1.0
		for i := 0; i < k; i++ {
			if mask&(1<<uint(i)) != 0 {
				bits[i] = true
				prob *= probs[i]
			} else {
				bits[i] = false
				prob *= 1 - probs[i]
			}
		}
		//lint:ignore dut/floateq a product of probabilities is exactly 0 iff some factor is exactly 0
		if prob == 0 {
			continue
		}
		ok, err := p.rule.Decide(bits)
		if err != nil {
			return 0, err
		}
		if ok {
			acc += prob
		}
	}
	return acc, nil
}

// AcceptUniform returns the exact probability the protocol accepts when
// every player samples from the uniform distribution.
func (p *ExactProtocol) AcceptUniform() (float64, error) {
	probs := make([]float64, len(p.evals))
	for i, e := range p.evals {
		probs[i] = e.Mu()
	}
	return p.acceptanceGivenBits(probs)
}

// AcceptHardFamily returns E_z[Pr accept under nu_z], exact over all z
// (requires ell <= 4). Conditioned on z the players are independent, which
// is exactly the structure equation (9) exploits.
func (p *ExactProtocol) AcceptHardFamily() (float64, error) {
	var sum float64
	count := 0
	probs := make([]float64, len(p.evals))
	err := dist.EnumeratePerturbations(p.inst.Ell, func(z dist.Perturbation) error {
		for i, e := range p.evals {
			d, derr := e.Diff(z)
			if derr != nil {
				return derr
			}
			probs[i] = clamp01(e.Mu() + d)
		}
		a, aerr := p.acceptanceGivenBits(probs)
		if aerr != nil {
			return aerr
		}
		sum += a
		count++
		return nil
	})
	if err != nil {
		return 0, err
	}
	return sum / float64(count), nil
}

// DivergenceCeiling returns the Section 6.1 information-theoretic ceiling
// on the acceptance gap: by equation (9) the joint divergence is the sum
// of the per-player Bernoulli divergences, and by Pinsker + Jensen,
//
//	|accept(U) - E_z accept(nu_z)| <= E_z TV(joint_z, joint_U)
//	  <= sqrt( (ln 2 / 2) * sum_i E_z[D_i] )    (D_i in bits).
func (p *ExactProtocol) DivergenceCeiling() (float64, error) {
	var total float64
	for _, e := range p.evals {
		d, err := ExpectedPlayerDivergence(e)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return math.Sqrt(math.Ln2 / 2 * total), nil
}

// Gap returns the exact |accept(U) - E_z accept| together with the
// divergence ceiling, the executable form of the Theorem 6.1 pipeline: a
// protocol distinguishes only if its gap is large, and the gap can never
// exceed the ceiling, which Lemma 4.2 in turn bounds by the players'
// sample counts.
func (p *ExactProtocol) Gap() (gap, ceiling float64, err error) {
	u, err := p.AcceptUniform()
	if err != nil {
		return 0, 0, err
	}
	far, err := p.AcceptHardFamily()
	if err != nil {
		return 0, 0, err
	}
	ceiling, err = p.DivergenceCeiling()
	if err != nil {
		return 0, 0, err
	}
	return math.Abs(u - far), ceiling, nil
}
