package lowerbound

import (
	"fmt"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// Unlike the first moment (linear in the strategy, hence exactly
// optimizable — see OptimalFirstMomentStrategy), the second moment
// E_z[(nu_z(G) - mu(G))^2] is a quadratic form over the truth table, so we
// settle for a certified local optimum: greedy single-bit flips until no
// flip improves. The result lower-bounds the true extremal value, which is
// all a tightness measurement needs.

// maxAdversaryCells caps |Z| x |inputs| for the precomputed weight matrix.
const maxAdversaryCells = 1 << 22

// AdversaryFeasible reports whether GreedySecondMomentAdversary can run on
// the instance (exhaustive z and an in-memory weight matrix).
func AdversaryFeasible(in Instance) bool {
	if in.Ell > 4 {
		return false
	}
	zCount := 1 << (1 << uint(in.Ell))
	inputs := 1 << uint(in.InputBits())
	return zCount*inputs <= maxAdversaryCells
}

// GreedySecondMomentAdversary improves a starting strategy by single-bit
// flips until E_z[(nu_z(G) - mu(G))^2] reaches a local maximum (or
// maxPasses full sweeps elapse). It returns the improved strategy and its
// exact second moment. Requires ell <= 4 (exhaustive z) and a modest
// instance so the |Z| x 2^m weight matrix fits in memory.
func GreedySecondMomentAdversary(in Instance, start boolfn.Func, maxPasses int) (boolfn.Func, float64, error) {
	if start.Vars() != in.InputBits() {
		return boolfn.Func{}, 0, fmt.Errorf("lowerbound: start strategy on %d bits, want %d", start.Vars(), in.InputBits())
	}
	if !start.IsBoolean(1e-12) {
		return boolfn.Func{}, 0, fmt.Errorf("lowerbound: start strategy is not Boolean")
	}
	if maxPasses < 1 {
		return boolfn.Func{}, 0, fmt.Errorf("lowerbound: %d passes", maxPasses)
	}
	if in.Ell > 4 {
		return boolfn.Func{}, 0, fmt.Errorf("lowerbound: adversary search needs ell <= 4, got %d", in.Ell)
	}
	zCount := 1 << (1 << uint(in.Ell))
	inputs := 1 << uint(in.InputBits())
	if zCount*inputs > maxAdversaryCells {
		return boolfn.Func{}, 0, fmt.Errorf("lowerbound: %d x %d weight matrix too large", zCount, inputs)
	}

	// Precompute w[z][input] = nu_z^q(input) - 1/n^q; then
	// diff(z) = sum_{input: G=1} w[z][input], and flipping bit `input`
	// changes diff(z) by ±w[z][input].
	uniformProb := 1.0
	for i := 0; i < in.Q; i++ {
		uniformProb /= float64(in.N())
	}
	weights := make([][]float64, 0, zCount)
	err := dist.EnumeratePerturbations(in.Ell, func(z dist.Perturbation) error {
		row := make([]float64, inputs)
		for idx := 0; idx < inputs; idx++ {
			samples, serr := in.SamplesFromInput(uint64(idx))
			if serr != nil {
				return serr
			}
			p, perr := in.NuZQ(z, samples)
			if perr != nil {
				return perr
			}
			row[idx] = p - uniformProb
		}
		weights = append(weights, row)
		return nil
	})
	if err != nil {
		return boolfn.Func{}, 0, err
	}

	table := make([]float64, inputs)
	diffs := make([]float64, len(weights))
	for idx := 0; idx < inputs; idx++ {
		table[idx] = start.At(uint64(idx))
		//lint:ignore dut/floateq boolean table stored as float: entries are exactly 0 or 1 by construction
		if table[idx] == 1 {
			for zi := range weights {
				diffs[zi] += weights[zi][idx]
			}
		}
	}
	objective := func() float64 {
		var acc float64
		for _, d := range diffs {
			acc += d * d
		}
		return acc / float64(len(diffs))
	}

	current := objective()
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for idx := 0; idx < inputs; idx++ {
			// Delta of sum d^2 when flipping: for each z, d -> d + s*w
			// with s = +1 if the bit turns on, -1 if it turns off.
			s := 1.0
			//lint:ignore dut/floateq boolean table stored as float: entries are exactly 0 or 1 by construction
			if table[idx] == 1 {
				s = -1
			}
			var delta float64
			for zi, row := range weights {
				w := s * row[idx]
				delta += 2*diffs[zi]*w + w*w
			}
			if delta > 1e-18*float64(len(weights)) {
				table[idx] = 1 - table[idx]
				for zi, row := range weights {
					diffs[zi] += s * row[idx]
				}
				current += delta / float64(len(weights))
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	g, err := boolfn.FromValues(in.InputBits(), table)
	if err != nil {
		return boolfn.Func{}, 0, err
	}
	return g, current, nil
}
