package lowerbound

import (
	"fmt"
	"math"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/dist"
)

// Instance fixes the parameters of the hard-family analysis: the cube
// dimension ell (universe size n = 2^(ell+1)), the per-player sample count
// q, and the proximity parameter eps.
//
// A player's strategy is a Boolean function G on m = (ell+1)*q bits laid
// out sample-major: sample i occupies bits [i*(ell+1), (i+1)*(ell+1)), the
// low ell of which encode the cube vertex x_i (bit set = coordinate -1)
// and the top one the sign s_i (bit set = s_i = -1).
type Instance struct {
	Ell int
	Q   int
	Eps float64
}

// MaxInputBits caps m = (ell+1)q for exhaustive computations (a dense
// truth table of 2^22 float64s is 32 MiB).
const MaxInputBits = 22

// NewInstance validates the parameters.
func NewInstance(ell, q int, eps float64) (Instance, error) {
	if ell < 0 {
		return Instance{}, fmt.Errorf("lowerbound: negative cube dimension %d", ell)
	}
	if q < 1 {
		return Instance{}, fmt.Errorf("lowerbound: sample count %d", q)
	}
	if eps <= 0 || eps > 1 {
		return Instance{}, fmt.Errorf("lowerbound: eps %v outside (0,1]", eps)
	}
	if m := (ell + 1) * q; m > MaxInputBits {
		return Instance{}, fmt.Errorf("lowerbound: %d input bits exceeds MaxInputBits=%d", m, MaxInputBits)
	}
	return Instance{Ell: ell, Q: q, Eps: eps}, nil
}

// N returns the universe size 2^(ell+1).
func (in Instance) N() int { return 1 << (in.Ell + 1) }

// CubeSize returns 2^ell.
func (in Instance) CubeSize() int { return 1 << in.Ell }

// InputBits returns m = (ell+1)q.
func (in Instance) InputBits() int { return (in.Ell + 1) * in.Q }

// Hard returns the matching dist.HardInstance.
func (in Instance) Hard() (dist.HardInstance, error) {
	return dist.NewHardInstance(in.Ell, in.Eps)
}

// XMask returns the bitmask of all x-bits (the sample-name coordinates).
func (in Instance) XMask() uint64 {
	var mask uint64
	per := uint64(1)<<in.Ell - 1
	for i := 0; i < in.Q; i++ {
		mask |= per << uint(i*(in.Ell+1))
	}
	return mask
}

// SMask returns the bitmask of all sign bits.
func (in Instance) SMask() uint64 {
	var mask uint64
	for i := 0; i < in.Q; i++ {
		mask |= 1 << uint(i*(in.Ell+1)+in.Ell)
	}
	return mask
}

// InputFromSamples packs a tuple of q element ids (each in [0, n)) into the
// m-bit input index of a strategy function.
func (in Instance) InputFromSamples(samples []int) (uint64, error) {
	if len(samples) != in.Q {
		return 0, fmt.Errorf("lowerbound: %d samples, want q=%d", len(samples), in.Q)
	}
	var idx uint64
	for i, s := range samples {
		if s < 0 || s >= in.N() {
			return 0, fmt.Errorf("lowerbound: sample %d outside universe of size %d", s, in.N())
		}
		x := uint64(s) >> 1   // cube vertex bits
		sign := uint64(s) & 1 // 1 means s = -1
		idx |= (x | sign<<uint(in.Ell)) << uint(i*(in.Ell+1))
	}
	return idx, nil
}

// SamplesFromInput unpacks an m-bit input index into q element ids.
func (in Instance) SamplesFromInput(idx uint64) ([]int, error) {
	if in.InputBits() < 64 && idx >= uint64(1)<<uint(in.InputBits()) {
		return nil, fmt.Errorf("lowerbound: input index %d out of range", idx)
	}
	samples := make([]int, in.Q)
	per := uint64(1)<<uint(in.Ell+1) - 1
	for i := range samples {
		chunk := (idx >> uint(i*(in.Ell+1))) & per
		x := chunk & (1<<uint(in.Ell) - 1)
		sign := chunk >> uint(in.Ell)
		samples[i] = int(x<<1 | sign)
	}
	return samples, nil
}

// XIndices extracts the q cube-vertex indices from an x-assignment packed
// as the scattered x-bits of an input index (sign bits ignored).
func (in Instance) XIndices(idx uint64) []int {
	xs := make([]int, in.Q)
	for i := range xs {
		xs[i] = int((idx >> uint(i*(in.Ell+1))) & (1<<uint(in.Ell) - 1))
	}
	return xs
}

// NuZQ evaluates the product distribution nu_z^q at a sample tuple
// directly: prod_i (1 + s_i z(x_i) eps)/n.
func (in Instance) NuZQ(z dist.Perturbation, samples []int) (float64, error) {
	if len(z) != in.CubeSize() {
		return 0, fmt.Errorf("lowerbound: perturbation of length %d, want %d", len(z), in.CubeSize())
	}
	if len(samples) != in.Q {
		return 0, fmt.Errorf("lowerbound: %d samples, want q=%d", len(samples), in.Q)
	}
	n := float64(in.N())
	prob := 1.0
	for _, s := range samples {
		if s < 0 || s >= in.N() {
			return 0, fmt.Errorf("lowerbound: sample %d outside universe", s)
		}
		x := s >> 1
		sign := 1.0
		if s&1 == 1 {
			sign = -1
		}
		prob *= (1 + sign*float64(z[x])*in.Eps) / n
	}
	return prob, nil
}

// NuZQFourier evaluates nu_z^q at a sample tuple through the character
// expansion of Claim 3.1:
//
//	nu_z^q(x, s) = n^{-q} sum_{S subset [q]} eps^{|S|} chi_S(s)
//	               prod_{j in S} z(x_j).
func (in Instance) NuZQFourier(z dist.Perturbation, samples []int) (float64, error) {
	if len(z) != in.CubeSize() {
		return 0, fmt.Errorf("lowerbound: perturbation of length %d, want %d", len(z), in.CubeSize())
	}
	if len(samples) != in.Q {
		return 0, fmt.Errorf("lowerbound: %d samples, want q=%d", len(samples), in.Q)
	}
	// Per-sample contribution eps * s_i * z(x_i); chi_S(s) prod z(x_j) =
	// prod_{j in S} (s_j z(x_j)).
	term := make([]float64, in.Q)
	for i, s := range samples {
		if s < 0 || s >= in.N() {
			return 0, fmt.Errorf("lowerbound: sample %d outside universe", s)
		}
		x := s >> 1
		sign := 1.0
		if s&1 == 1 {
			sign = -1
		}
		term[i] = in.Eps * sign * float64(z[x])
	}
	var sum float64
	for set := uint64(0); set < uint64(1)<<uint(in.Q); set++ {
		prod := 1.0
		for j := 0; j < in.Q; j++ {
			if set&(1<<uint(j)) != 0 {
				prod *= term[j]
			}
		}
		sum += prod
	}
	return sum / math.Pow(float64(in.N()), float64(in.Q)), nil
}

// MuG returns mu(G) = E_{S ~ U^q}[G]: because the sample space of q draws
// from [n] is exactly the m-bit cube, this is just the mean of G.
func (in Instance) MuG(g boolfn.Func) (float64, error) {
	if g.Vars() != in.InputBits() {
		return 0, fmt.Errorf("lowerbound: strategy on %d bits, want %d", g.Vars(), in.InputBits())
	}
	return g.Mean(), nil
}

// NuZDirect returns nu_z(G) = E_{S ~ nu_z^q}[G] by direct summation over
// the whole input space (O(q 2^m)); it is the test oracle for the
// Fourier-based DiffEvaluator.
func (in Instance) NuZDirect(g boolfn.Func, z dist.Perturbation) (float64, error) {
	if g.Vars() != in.InputBits() {
		return 0, fmt.Errorf("lowerbound: strategy on %d bits, want %d", g.Vars(), in.InputBits())
	}
	var acc float64
	for idx := uint64(0); idx < uint64(g.Len()); idx++ {
		v := g.At(idx)
		//lint:ignore dut/floateq gadget entries are exact {-1,0,1} values stored as float
		if v == 0 {
			continue
		}
		samples, err := in.SamplesFromInput(idx)
		if err != nil {
			return 0, err
		}
		p, err := in.NuZQ(z, samples)
		if err != nil {
			return 0, err
		}
		acc += p * v
	}
	return acc, nil
}
