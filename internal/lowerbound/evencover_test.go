package lowerbound

import (
	"math"
	"math/bits"
	"testing"

	"github.com/distributed-uniformity/dut/internal/stats"
)

func TestIsEvenlyCoveredKnownCases(t *testing.T) {
	tests := []struct {
		name string
		xs   []int
		set  uint64
		want bool
	}{
		{name: "empty set", xs: []int{1, 2, 3}, set: 0, want: true},
		{name: "singleton", xs: []int{1, 2, 3}, set: 0b001, want: false},
		{name: "matched pair", xs: []int{5, 5, 3}, set: 0b011, want: true},
		{name: "unmatched pair", xs: []int{5, 4, 3}, set: 0b011, want: false},
		{name: "two pairs", xs: []int{1, 2, 2, 1}, set: 0b1111, want: true},
		{name: "triple", xs: []int{7, 7, 7}, set: 0b111, want: false},
		{name: "quadruple", xs: []int{7, 7, 7, 7}, set: 0b1111, want: true},
		{name: "pair plus odd", xs: []int{1, 1, 2}, set: 0b111, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsEvenlyCovered(tt.xs, tt.set); got != tt.want {
				t.Errorf("IsEvenlyCovered(%v, %b) = %v", tt.xs, tt.set, got)
			}
		})
	}
}

func TestXSCountDependsOnlyOnSize(t *testing.T) {
	// Proposition 5.2 part 1.
	const (
		ell = 2
		q   = 4
	)
	bySize := map[int]int64{}
	for set := uint64(1); set < 1<<q; set++ {
		count, err := CountEvenlyCovered(ell, q, set)
		if err != nil {
			t.Fatal(err)
		}
		size := bits.OnesCount64(set)
		if prev, seen := bySize[size]; seen {
			if prev != count {
				t.Fatalf("|S|=%d: counts %d and %d differ", size, prev, count)
			}
		} else {
			bySize[size] = count
		}
		if size%2 == 1 && count != 0 {
			t.Fatalf("odd |S|=%d has count %d", size, count)
		}
	}
}

func TestXSCountExactValues(t *testing.T) {
	// |X_S| for |S| = 2 is exactly (n/2)^{q-1}: the two covered samples
	// must agree (n/2 ways) and the rest are free.
	for _, tt := range []struct{ ell, q int }{{1, 2}, {2, 3}, {3, 2}} {
		cube := int64(1) << uint(tt.ell)
		want := int64(1)
		for i := 0; i < tt.q-1; i++ {
			want *= cube
		}
		got, err := CountEvenlyCovered(tt.ell, tt.q, 0b11)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ell=%d q=%d: |X_{2}| = %d, want %d", tt.ell, tt.q, got, want)
		}
	}
}

func TestProposition52Bound(t *testing.T) {
	for _, tt := range []struct{ ell, q int }{{1, 4}, {2, 4}, {2, 6}, {3, 4}} {
		for size := 0; size <= tt.q; size++ {
			set := uint64(1)<<uint(size) - 1
			exact, err := CountEvenlyCovered(tt.ell, tt.q, set)
			if err != nil {
				t.Fatal(err)
			}
			bound, err := XSBound(tt.ell, tt.q, size)
			if err != nil {
				t.Fatal(err)
			}
			if float64(exact) > bound+1e-9 {
				t.Errorf("ell=%d q=%d |S|=%d: exact %d exceeds bound %v", tt.ell, tt.q, size, exact, bound)
			}
		}
	}
}

func TestXSBoundValidation(t *testing.T) {
	if _, err := XSBound(-1, 2, 2); err == nil {
		t.Error("negative ell accepted")
	}
	if _, err := XSBound(2, 2, 3); err == nil {
		t.Error("|S| > q accepted")
	}
	if b, err := XSBound(2, 4, 3); err != nil || b != 0 {
		t.Errorf("odd size bound = %v, %v", b, err)
	}
}

func TestARSumIdentity(t *testing.T) {
	// sum_x a_r(x) = C(q, 2r) |X_{2r}| — the interchange-of-summation
	// identity from Section 5.1.
	const (
		ell = 2
		q   = 4
		r   = 1
	)
	cube := 1 << ell
	total := 1
	for i := 0; i < q; i++ {
		total *= cube
	}
	var sum int64
	xs := make([]int, q)
	for a := 0; a < total; a++ {
		v := a
		for i := 0; i < q; i++ {
			xs[i] = v % cube
			v /= cube
		}
		ar, err := AR(xs, r)
		if err != nil {
			t.Fatal(err)
		}
		sum += ar
	}
	x2r, err := CountEvenlyCovered(ell, q, 0b11)
	if err != nil {
		t.Fatal(err)
	}
	binom, err := stats.Binomial(q, 2*r)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(binom) * x2r; sum != want {
		t.Errorf("sum_x a_r = %d, want %d", sum, want)
	}
}

func TestARKnownValues(t *testing.T) {
	// xs = (a, a, b, b) with a != b: evenly-covered 2-sets are {0,1} and
	// {2,3}; a_1 = 2. Evenly-covered 4-sets: the full set; a_2 = 1.
	xs := []int{3, 3, 1, 1}
	a1, err := AR(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != 2 {
		t.Errorf("a_1 = %d, want 2", a1)
	}
	a2, err := AR(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != 1 {
		t.Errorf("a_2 = %d, want 1", a2)
	}
	if ar, _ := AR(xs, 3); ar != 0 {
		t.Errorf("a_3 = %d, want 0 (out of range)", ar)
	}
	// All-same vector: every even-size subset is evenly covered.
	same := []int{2, 2, 2, 2}
	a1, _ = AR(same, 1)
	if a1 != 6 {
		t.Errorf("all-same a_1 = %d, want C(4,2)=6", a1)
	}
}

func TestARMeanBoundHolds(t *testing.T) {
	// E_x[a_r] <= (q^2/n)^r (the Section 5.1 moment estimate).
	for _, tt := range []struct{ ell, q, r int }{{1, 4, 1}, {2, 4, 1}, {2, 4, 2}, {2, 6, 2}, {3, 4, 1}} {
		exact, err := ARMomentExact(tt.ell, tt.q, tt.r, 1)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := ARMeanBound(tt.ell, tt.q, tt.r)
		if err != nil {
			t.Fatal(err)
		}
		if exact > bound+1e-12 {
			t.Errorf("ell=%d q=%d r=%d: E[a_r] = %v exceeds %v", tt.ell, tt.q, tt.r, exact, bound)
		}
	}
}

func TestLemma55MomentBoundHolds(t *testing.T) {
	for _, tt := range []struct{ ell, q, r, m int }{
		{1, 4, 1, 1}, {1, 4, 1, 2}, {2, 4, 1, 2}, {2, 4, 2, 2}, {2, 6, 1, 3}, {3, 4, 1, 2},
	} {
		exact, err := ARMomentExact(tt.ell, tt.q, tt.r, tt.m)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := ARMomentBound(tt.ell, tt.q, tt.r, tt.m)
		if err != nil {
			t.Fatal(err)
		}
		if exact > bound+1e-9 {
			t.Errorf("ell=%d q=%d r=%d m=%d: E[a_r^m] = %v exceeds Lemma 5.5 bound %v",
				tt.ell, tt.q, tt.r, tt.m, exact, bound)
		}
	}
}

func TestARMomentMonteCarloMatchesExact(t *testing.T) {
	const (
		ell = 2
		q   = 5
		r   = 1
		m   = 2
	)
	exact, err := ARMomentExact(ell, q, r, m)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ARMomentMonteCarlo(ell, q, r, m, 200000, testRand(11))
	if err != nil {
		t.Fatal(err)
	}
	if exact == 0 {
		t.Fatal("degenerate exact moment")
	}
	if rel := math.Abs(mc-exact) / exact; rel > 0.05 {
		t.Errorf("Monte Carlo %v vs exact %v (rel err %v)", mc, exact, rel)
	}
}

func TestEvenCoverValidation(t *testing.T) {
	if _, err := CountEvenlyCovered(-1, 2, 0); err == nil {
		t.Error("negative ell accepted")
	}
	if _, err := CountEvenlyCovered(2, 2, 1<<3); err == nil {
		t.Error("subset out of range accepted")
	}
	if _, err := CountEvenlyCovered(7, 4, 0); err == nil {
		t.Error("oversized enumeration accepted")
	}
	if _, err := ARMomentExact(2, 2, 1, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := ARMomentMonteCarlo(2, 2, 1, 1, 0, testRand(0)); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := ARMomentBound(2, 2, 1, 0); err == nil {
		t.Error("m=0 bound accepted")
	}
	if _, err := ARMeanBound(2, 0, 1); err == nil {
		t.Error("q=0 accepted")
	}
}
