package lowerbound

import (
	"math"
	"testing"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

func TestNewMultiBitStrategyValidation(t *testing.T) {
	in := mustInstance(t, 2, 2, 0.5)
	size := 1 << uint(in.InputBits())
	table := make([]uint8, size)
	if _, err := NewMultiBitStrategy(in, 0, table); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := NewMultiBitStrategy(in, MaxMessageBits+1, table); err == nil {
		t.Error("huge r accepted")
	}
	if _, err := NewMultiBitStrategy(in, 2, table[:size-1]); err == nil {
		t.Error("short table accepted")
	}
	bad := make([]uint8, size)
	bad[3] = 4
	if _, err := NewMultiBitStrategy(in, 2, bad); err == nil {
		t.Error("out-of-range message accepted")
	}
	s, err := NewMultiBitStrategy(in, 2, table)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bits() != 2 {
		t.Errorf("bits = %d", s.Bits())
	}
	table[0] = 1
	if s.table[0] != 0 {
		t.Error("table aliased")
	}
}

func TestMultiBitBaseDistributionSumsToOne(t *testing.T) {
	in := mustInstance(t, 2, 3, 0.4)
	s, err := RandomMultiBitStrategy(in, 3, testRand(41))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewMultiBitEvaluator(s)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range e.BaseDistribution() {
		if p < 0 {
			t.Fatalf("negative base probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("base distribution sums to %v", sum)
	}
	z, err := dist.RandomPerturbation(in.Ell, testRand(42))
	if err != nil {
		t.Fatal(err)
	}
	pz, err := e.MessageDistribution(z)
	if err != nil {
		t.Fatal(err)
	}
	sum = 0
	for _, p := range pz {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("nu_z message distribution sums to %v", sum)
	}
}

func TestMultiBitMessageDistributionMatchesDirect(t *testing.T) {
	// Oracle: sum nu_z^q(input) over inputs mapped to each message value.
	in := mustInstance(t, 2, 2, 0.6)
	s, err := RandomMultiBitStrategy(in, 2, testRand(43))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewMultiBitEvaluator(s)
	if err != nil {
		t.Fatal(err)
	}
	z, err := dist.RandomPerturbation(in.Ell, testRand(44))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 4)
	for idx := uint64(0); idx < uint64(len(s.table)); idx++ {
		samples, err := in.SamplesFromInput(idx)
		if err != nil {
			t.Fatal(err)
		}
		p, err := in.NuZQ(z, samples)
		if err != nil {
			t.Fatal(err)
		}
		want[s.table[idx]] += p
	}
	got, err := e.MessageDistribution(z)
	if err != nil {
		t.Fatal(err)
	}
	for c := range want {
		if math.Abs(got[c]-want[c]) > 1e-12 {
			t.Fatalf("message %d: spectral %v, direct %v", c, got[c], want[c])
		}
	}
}

func TestMultiBitKLReducesToBernoulliAtOneBit(t *testing.T) {
	// An r=1 strategy's message KL must equal the Bernoulli KL of the
	// single-bit pipeline.
	in := mustInstance(t, 2, 3, 0.3)
	g, err := RandomStrategy(in, 0.4, testRand(45))
	if err != nil {
		t.Fatal(err)
	}
	table := make([]uint8, g.Len())
	for idx := range table {
		if g.At(uint64(idx)) == 1 {
			table[idx] = 1
		}
	}
	s, err := NewMultiBitStrategy(in, 1, table)
	if err != nil {
		t.Fatal(err)
	}
	me, err := NewMultiBitEvaluator(s)
	if err != nil {
		t.Fatal(err)
	}
	de, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		z, err := dist.RandomPerturbation(in.Ell, testRand(uint64(46+trial)))
		if err != nil {
			t.Fatal(err)
		}
		multi, err := me.MessageKL(z)
		if err != nil {
			t.Fatal(err)
		}
		d, err := de.Diff(z)
		if err != nil {
			t.Fatal(err)
		}
		bern, err := stats.BernoulliKL(de.Mu()+d, de.Mu())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(multi-bern) > 1e-10 {
			t.Fatalf("trial %d: multi-bit KL %v vs Bernoulli %v", trial, multi, bern)
		}
	}
}

func TestMultiBitKLNonNegativeAndZeroOnUniformMixture(t *testing.T) {
	in := mustInstance(t, 2, 2, 0.5)
	s, err := QuantizedCollisionStrategy(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewMultiBitEvaluator(s)
	if err != nil {
		t.Fatal(err)
	}
	err = dist.EnumeratePerturbations(in.Ell, func(z dist.Perturbation) error {
		kl, kerr := e.MessageKL(z)
		if kerr != nil {
			return kerr
		}
		if kl < 0 {
			t.Fatalf("negative KL %v", kl)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantizedCollisionStrategyGainsWithBits(t *testing.T) {
	// The quantized collision statistic carries more information with more
	// bits, and every width stays within the 2^{Theta(r)} envelope of the
	// single-bit budget (Theorem 6.4's mechanism).
	in := mustInstance(t, 3, 3, 0.2)
	budget, err := DivergenceUpperBound(in.N(), in.Q, in.Eps)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, r := range []int{1, 2, 3} {
		s, err := QuantizedCollisionStrategy(in, r)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewMultiBitEvaluator(s)
		if err != nil {
			t.Fatal(err)
		}
		kl, err := e.ExpectedKL()
		if err != nil {
			t.Fatal(err)
		}
		if kl+1e-15 < prev {
			t.Errorf("r=%d: KL %v dropped below r-1's %v", r, kl, prev)
		}
		prev = kl
		// Envelope: a 2^r-valued message can carry at most 2^{Theta(r)}
		// times the single-bit budget; use factor 4^r as a generous cap.
		if kl > budget*math.Pow(4, float64(r)) {
			t.Errorf("r=%d: KL %v outside the 2^Theta(r) envelope of budget %v", r, kl, budget)
		}
	}
}

func TestExpectedKLDeterministic(t *testing.T) {
	in := mustInstance(t, 2, 2, 0.4)
	s, err := RandomMultiBitStrategy(in, 2, testRand(50))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewMultiBitEvaluator(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.ExpectedKL()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ExpectedKL()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ExpectedKL not deterministic: %v vs %v", a, b)
	}
	if _, err := NewMultiBitEvaluator(nil); err == nil {
		t.Error("nil strategy accepted")
	}
}
