package lowerbound

import (
	"fmt"
	"math/rand/v2"

	"github.com/distributed-uniformity/dut/internal/boolfn"
)

// The constructors below build concrete player strategies G used by the
// verification experiments: random strategies probe the lemmas' generic
// behavior, and the detector strategies are the natural "collision
// counting" players the paper says are the only way to gain information.

// RandomStrategy returns a random {0,1} strategy whose truth-table entries
// are independent Bernoulli(p) coins.
func RandomStrategy(inst Instance, p float64, rng *rand.Rand) (boolfn.Func, error) {
	return boolfn.RandomBiased(inst.InputBits(), p, rng)
}

// MatchedPairDetector returns the strategy that rejects (sends 0) iff some
// two samples hit the same cube vertex with the same sign — the event
// whose probability rises from collisions under nu_z. It is the
// single-player analogue of the collision tester and the most
// distinguishing low-complexity G on this family.
func MatchedPairDetector(inst Instance) (boolfn.Func, error) {
	return strategyFromSamples(inst, func(samples []int) bool {
		for i := 0; i < len(samples); i++ {
			for j := i + 1; j < len(samples); j++ {
				if samples[i] == samples[j] {
					return false
				}
			}
		}
		return true
	})
}

// VertexCollisionDetector returns the strategy that rejects iff some two
// samples share a cube vertex regardless of sign. Vertex collisions are
// equally likely under uniform and nu_z, so this strategy is a natural
// "useless" control: its acceptance probability cannot distinguish the two
// cases.
func VertexCollisionDetector(inst Instance) (boolfn.Func, error) {
	return strategyFromSamples(inst, func(samples []int) bool {
		for i := 0; i < len(samples); i++ {
			for j := i + 1; j < len(samples); j++ {
				if samples[i]>>1 == samples[j]>>1 {
					return false
				}
			}
		}
		return true
	})
}

// SignAgreementDetector rejects iff some two samples on the same vertex
// carry the same sign (matched twins): under nu_z, same-vertex pairs agree
// in sign with probability (1+eps^2)/2 > 1/2, so the strategy leaks
// exactly the paper's "collision information" while ignoring vertex
// collisions themselves.
func SignAgreementDetector(inst Instance) (boolfn.Func, error) {
	return strategyFromSamples(inst, func(samples []int) bool {
		for i := 0; i < len(samples); i++ {
			for j := i + 1; j < len(samples); j++ {
				if samples[i]>>1 == samples[j]>>1 && samples[i]&1 == samples[j]&1 {
					return false
				}
			}
		}
		return true
	})
}

// strategyFromSamples lifts a predicate on sample tuples to a Boolean
// function on the instance's input bits.
func strategyFromSamples(inst Instance, accept func(samples []int) bool) (boolfn.Func, error) {
	if accept == nil {
		return boolfn.Func{}, fmt.Errorf("lowerbound: nil acceptance predicate")
	}
	return boolfn.FromIndicator(inst.InputBits(), func(idx uint64) bool {
		samples, err := inst.SamplesFromInput(idx)
		if err != nil {
			// Unreachable: FromIndicator enumerates exactly the valid
			// indices.
			return false
		}
		return accept(samples)
	})
}
