package lowerbound

import (
	"fmt"
	"math"

	"github.com/distributed-uniformity/dut/internal/dist"
	"github.com/distributed-uniformity/dut/internal/stats"
)

// PlayerDivergence returns D(B(nu_z(G)) || B(mu(G))) in bits — the
// information one player's bit carries about whether the input is nu_z or
// uniform, the quantity summed in equation (9).
func PlayerDivergence(nuZ, mu float64) (float64, error) {
	return stats.BernoulliKL(nuZ, mu)
}

// ExpectedPlayerDivergence computes E_z[D(B(nu_z(G)) || B(mu(G)))] exactly
// by enumerating z (requires ell <= 4).
func ExpectedPlayerDivergence(e *DiffEvaluator) (float64, error) {
	if e == nil {
		return 0, fmt.Errorf("lowerbound: nil evaluator")
	}
	mu := e.Mu()
	var acc float64
	count := 0
	err := dist.EnumeratePerturbations(e.inst.Ell, func(z dist.Perturbation) error {
		d, derr := e.Diff(z)
		if derr != nil {
			return derr
		}
		kl, derr := stats.BernoulliKL(clamp01(mu+d), mu)
		if derr != nil {
			return derr
		}
		if math.IsInf(kl, 1) {
			// mu = 0 or 1 with a deviating nu_z: the bit is deterministic
			// under uniform but not under nu_z, carrying unbounded
			// divergence; surface it as an error since no bounded
			// strategy reaches it.
			return fmt.Errorf("lowerbound: infinite player divergence at mu=%v diff=%v", mu, d)
		}
		acc += kl
		count++
		return nil
	})
	if err != nil {
		return 0, err
	}
	return acc / float64(count), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// RefereeRequirement returns the per-player average divergence required by
// inequality (10): to succeed with probability 1 - delta the average
// player must contribute at least log2(1/delta)/(10 k) bits.
func RefereeRequirement(k int, delta float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("lowerbound: referee requirement with k=%d", k)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("lowerbound: failure probability %v outside (0,1)", delta)
	}
	return math.Log2(1/delta) / (10 * float64(k)), nil
}

// DivergenceUpperBound returns the inequality (12) upper bound on the
// per-player expected divergence in bits:
// (1/ln 2)(20 q^2 eps^4/n + q eps^2/n).
func DivergenceUpperBound(n, q int, eps float64) (float64, error) {
	if n < 2 || q < 1 {
		return 0, fmt.Errorf("lowerbound: divergence bound with n=%d q=%d", n, q)
	}
	if eps <= 0 || eps > 1 {
		return 0, fmt.Errorf("lowerbound: divergence bound with eps=%v", eps)
	}
	qf, nf := float64(q), float64(n)
	return (20*qf*qf*eps*eps*eps*eps/nf + qf*eps*eps/nf) / math.Ln2, nil
}

// MinimalQFromDivergence inverts inequality (13): the smallest q for which
// the divergence budget allows the referee to succeed with probability
// 1 - delta on k players. It is the computational form of Theorem 6.1 and
// returns a real-valued bound (callers take the ceiling).
func MinimalQFromDivergence(n, k int, eps, delta float64) (float64, error) {
	if n < 2 || k < 1 {
		return 0, fmt.Errorf("lowerbound: inversion with n=%d k=%d", n, k)
	}
	if eps <= 0 || eps > 1 {
		return 0, fmt.Errorf("lowerbound: inversion with eps=%v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("lowerbound: inversion with delta=%v", delta)
	}
	need, err := RefereeRequirement(k, delta)
	if err != nil {
		return 0, err
	}
	needNats := need * math.Ln2
	nf := float64(n)
	// Solve 20 q^2 eps^4 / n + q eps^2 / n = needNats for q > 0
	// (quadratic in q).
	a := 20 * math.Pow(eps, 4) / nf
	b := eps * eps / nf
	c := -needNats
	q := (-b + math.Sqrt(b*b-4*a*c)) / (2 * a)
	return q, nil
}
