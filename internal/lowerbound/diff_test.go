package lowerbound

import (
	"math"
	"testing"

	"github.com/distributed-uniformity/dut/internal/boolfn"
	"github.com/distributed-uniformity/dut/internal/dist"
)

func TestLemma41FourierEqualsDirect(t *testing.T) {
	// The central identity: the spectral evaluation of nu_z(G) - mu(G)
	// agrees exactly with direct summation, for assorted strategies and
	// perturbations.
	for _, tt := range []struct {
		ell, q int
		eps    float64
	}{{1, 2, 0.5}, {2, 2, 0.3}, {2, 3, 0.7}, {3, 2, 0.2}} {
		in := mustInstance(t, tt.ell, tt.q, tt.eps)
		rng := testRand(uint64(100 + tt.ell + tt.q))
		strategies := map[string]func() (boolfn.Func, error){
			"random":   func() (boolfn.Func, error) { return RandomStrategy(in, 0.5, rng) },
			"biased":   func() (boolfn.Func, error) { return RandomStrategy(in, 0.05, rng) },
			"detector": func() (boolfn.Func, error) { return MatchedPairDetector(in) },
		}
		for name, mk := range strategies {
			g, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewDiffEvaluator(in, g)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 5; trial++ {
				z, err := dist.RandomPerturbation(in.Ell, rng)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := e.Diff(z)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := in.NuZDirect(g, z)
				if err != nil {
					t.Fatal(err)
				}
				want := direct - e.Mu()
				if math.Abs(fast-want) > 1e-12 {
					t.Fatalf("ell=%d q=%d %s: fourier %v vs direct %v", tt.ell, tt.q, name, fast, want)
				}
			}
		}
	}
}

func TestEquation3EvenCoverEqualsEnumeration(t *testing.T) {
	// E_z[diff] computed by the evenly-covered formula (3) must equal the
	// exhaustive average over all 2^{2^ell} perturbations.
	for _, tt := range []struct {
		ell, q int
		eps    float64
	}{{1, 3, 0.6}, {2, 2, 0.4}, {2, 4, 0.3}, {3, 2, 0.5}} {
		in := mustInstance(t, tt.ell, tt.q, tt.eps)
		rng := testRand(uint64(200 + tt.ell*7 + tt.q))
		g, err := RandomStrategy(in, 0.4, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewDiffEvaluator(in, g)
		if err != nil {
			t.Fatal(err)
		}
		mean, _, err := e.ZMoments()
		if err != nil {
			t.Fatal(err)
		}
		formula := e.ExpectedDiffEvenCover()
		if math.Abs(mean-formula) > 1e-12 {
			t.Fatalf("ell=%d q=%d: enumeration %v vs formula %v", tt.ell, tt.q, mean, formula)
		}
	}
}

func TestDiffEvaluatorValidation(t *testing.T) {
	in := mustInstance(t, 2, 2, 0.5)
	g, _ := RandomStrategy(in, 0.5, testRand(6))
	e, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Diff(dist.Perturbation{1, 1}); err == nil {
		t.Error("short perturbation accepted")
	}
	other := mustInstance(t, 3, 2, 0.5)
	gOther, _ := RandomStrategy(other, 0.5, testRand(7))
	if _, err := NewDiffEvaluator(in, gOther); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestDiffEvaluatorMomentsConsistent(t *testing.T) {
	// second moment >= mean^2, and MaxAbsDiff >= |mean|.
	in := mustInstance(t, 2, 3, 0.5)
	g, _ := MatchedPairDetector(in)
	e, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	mean, second, err := e.ZMoments()
	if err != nil {
		t.Fatal(err)
	}
	if second < mean*mean-1e-15 {
		t.Errorf("E[d^2] = %v below mean^2 = %v", second, mean*mean)
	}
	maxAbs, err := e.MaxAbsDiff()
	if err != nil {
		t.Fatal(err)
	}
	if maxAbs < math.Abs(mean) {
		t.Errorf("max |d| = %v below |mean| = %v", maxAbs, math.Abs(mean))
	}
	if maxAbs*maxAbs < second {
		t.Errorf("max |d|^2 = %v below E[d^2] = %v", maxAbs*maxAbs, second)
	}
}

func TestVertexCollisionDetectorIsBlind(t *testing.T) {
	// Vertex collisions ignore signs, and the vertex marginal of nu_z is
	// uniform for every z; the detector's acceptance probability must be
	// identical under every nu_z.
	in := mustInstance(t, 2, 3, 0.9)
	g, err := VertexCollisionDetector(in)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	err = dist.EnumeratePerturbations(in.Ell, func(z dist.Perturbation) error {
		d, derr := e.Diff(z)
		if derr != nil {
			return derr
		}
		if math.Abs(d) > 1e-12 {
			t.Fatalf("vertex detector has diff %v under z=%v", d, z)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSignAgreementDetectorGainsWithEps(t *testing.T) {
	// The sign-agreement detector is the useful one: its mean diff over z
	// must be negative (it accepts less often under nu_z) and grow in
	// magnitude with eps.
	prev := 0.0
	for _, eps := range []float64{0.2, 0.5, 0.9} {
		in := mustInstance(t, 2, 4, eps)
		g, err := SignAgreementDetector(in)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewDiffEvaluator(in, g)
		if err != nil {
			t.Fatal(err)
		}
		mean, _, err := e.ZMoments()
		if err != nil {
			t.Fatal(err)
		}
		if mean >= 0 {
			t.Errorf("eps=%v: sign detector mean diff %v, want negative", eps, mean)
		}
		if math.Abs(mean) <= math.Abs(prev) {
			t.Errorf("eps=%v: |mean diff| %v did not grow from %v", eps, math.Abs(mean), math.Abs(prev))
		}
		prev = mean
	}
}

func TestStrategyConstructorsAreBoolean(t *testing.T) {
	in := mustInstance(t, 2, 3, 0.5)
	for name, mk := range map[string]func(Instance) (boolfn.Func, error){
		"matched": MatchedPairDetector,
		"vertex":  VertexCollisionDetector,
		"sign":    SignAgreementDetector,
	} {
		g, err := mk(in)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsBoolean(1e-12) {
			t.Errorf("%s detector is not Boolean", name)
		}
	}
	if _, err := strategyFromSamples(in, nil); err == nil {
		t.Error("nil predicate accepted")
	}
}

func TestDetectorNesting(t *testing.T) {
	// Sign-agreement collisions are a subset of vertex collisions, so the
	// acceptance regions nest: vertex-accept implies sign-accept implies
	// nothing, and matched-pair (same element) rejects a subset of
	// sign-agreement rejections.
	in := mustInstance(t, 2, 3, 0.5)
	vertex, _ := VertexCollisionDetector(in)
	sign, _ := SignAgreementDetector(in)
	matched, _ := MatchedPairDetector(in)
	for idx := uint64(0); idx < uint64(1)<<uint(in.InputBits()); idx++ {
		v, s, m := vertex.At(idx), sign.At(idx), matched.At(idx)
		if v == 1 && s != 1 {
			t.Fatalf("no vertex collision but sign collision at %d", idx)
		}
		if s == 1 && m != 1 {
			t.Fatalf("no sign collision but element collision at %d", idx)
		}
	}
}

func TestZMomentsSampledMatchesExact(t *testing.T) {
	in := mustInstance(t, 2, 3, 0.4)
	g, err := SignAgreementDetector(in)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	exactMean, exactSecond, err := e.ZMoments()
	if err != nil {
		t.Fatal(err)
	}
	mean, second, err := e.ZMomentsSampled(20000, testRand(71))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-exactMean) > 5e-3 {
		t.Errorf("sampled mean %v vs exact %v", mean, exactMean)
	}
	if math.Abs(second-exactSecond) > 5e-4 {
		t.Errorf("sampled second %v vs exact %v", second, exactSecond)
	}
	if _, _, err := e.ZMomentsSampled(0, testRand(0)); err == nil {
		t.Error("zero trials accepted")
	}
	if _, _, err := e.ZMomentsSampled(1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestZMomentsSampledLargeInstance(t *testing.T) {
	// ell=4 is out of reach for exhaustive z-enumeration (2^16 vectors
	// would still be fine, but exercise the sampled path and check the
	// Lemma 5.1 bound holds on the sampled estimate).
	in := mustInstance(t, 4, 3, 0.1)
	g, err := RandomStrategy(in, 0.3, testRand(72))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	mean, second, err := e.ZMomentsSampled(3000, testRand(73))
	if err != nil {
		t.Fatal(err)
	}
	if second < mean*mean-1e-12 {
		t.Errorf("sampled moments inconsistent: E[d^2]=%v < mean^2=%v", second, mean*mean)
	}
	bound, err := Lemma51Bound(in.N(), in.Q, in.Eps, e.Var())
	if err != nil {
		t.Fatal(err)
	}
	// Allow Monte-Carlo slack on top of the proven bound.
	if math.Abs(mean) > bound+3e-3 {
		t.Errorf("sampled |E diff| = %v far above the Lemma 5.1 bound %v", math.Abs(mean), bound)
	}
}

func TestSingleSampleAllStrategiesBlindOnAverage(t *testing.T) {
	// The exact, exhaustive form of the q=1 information-freeness that
	// underpins the Section 6.3 remark: with a single sample, EVERY
	// strategy G satisfies E_z[nu_z(G)] = mu(G) exactly (no evenly-covered
	// set exists at q=1). Enumerate all 2^(2^m) strategies on the smallest
	// instance.
	in := mustInstance(t, 1, 1, 0.9)
	size := 1 << uint(in.InputBits()) // 4 inputs
	for mask := uint64(0); mask < 1<<uint(size); mask++ {
		mask := mask
		g, err := boolfn.FromIndicator(in.InputBits(), func(idx uint64) bool {
			return mask&(1<<idx) != 0
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewDiffEvaluator(in, g)
		if err != nil {
			t.Fatal(err)
		}
		mean, _, err := e.ZMoments()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean) > 1e-15 {
			t.Fatalf("strategy %04b: E_z[diff] = %v, want exactly 0", mask, mean)
		}
	}
}

func TestTwoSamplesSomeStrategyGains(t *testing.T) {
	// The counterpart: at q=2 the sign-agreement detector already has a
	// strictly nonzero average difference — collisions carry information.
	in := mustInstance(t, 1, 2, 0.9)
	g, err := SignAgreementDetector(in)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDiffEvaluator(in, g)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := e.ZMoments()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean) < 1e-6 {
		t.Errorf("q=2 detector mean diff %v, want clearly nonzero", mean)
	}
}
